#include "dyn/delta_enumerate.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace daf::dyn {
namespace {

constexpr uint64_t kStopPollPeriod = 1024;

}  // namespace

DeltaEnumerator::DeltaEnumerator(const Graph& query,
                                 const DynamicCandidateSpace& cs)
    : query_(query), cs_(cs), query_edges_(query.LabeledEdgeList()) {
  // Deterministic seed order: ascending canonical edges.
  std::sort(query_edges_.begin(), query_edges_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const uint32_t n = query_.NumVertices();
  seed_orders_.resize(query_edges_.size());
  for (size_t qe = 0; qe < query_edges_.size(); ++qe) {
    SeedOrder& so = seed_orders_[qe];
    so.order.reserve(n);
    so.pos.assign(n, static_cast<uint32_t>(-1));
    auto push = [&](VertexId u) {
      so.pos[u] = static_cast<uint32_t>(so.order.size());
      so.order.push_back(u);
    };
    // BFS from the pinned edge so every later vertex has a mapped
    // neighbor to extend from.
    std::deque<VertexId> frontier;
    push(query_edges_[qe].first.first);
    push(query_edges_[qe].first.second);
    frontier.push_back(so.order[0]);
    frontier.push_back(so.order[1]);
    while (!frontier.empty()) {
      VertexId u = frontier.front();
      frontier.pop_front();
      for (VertexId w : query_.Neighbors(u)) {
        if (so.pos[w] == static_cast<uint32_t>(-1)) {
          push(w);
          frontier.push_back(w);
        }
      }
    }
    // Queries are connected, so the order covers every vertex.
    assert(so.order.size() == n);
  }
}

DeltaEnumResult DeltaEnumerator::Created(
    const DeltaGraph& dg, const NormalizedBatch& net,
    const DeltaEnumOptions& options) const {
  return Enumerate(dg, net.inserts, net.new_vertices, options);
}

DeltaEnumResult DeltaEnumerator::Destroyed(
    const DeltaGraph& dg, const NormalizedBatch& net,
    const DeltaEnumOptions& options) const {
  return Enumerate(dg, net.removes, net.removed_vertices, options);
}

DeltaEnumResult DeltaEnumerator::Enumerate(
    const DeltaGraph& dg, const std::vector<EdgeUpdate>& changed,
    const std::vector<VertexId>& changed_vertices,
    const DeltaEnumOptions& options) const {
  DeltaEnumResult result;
  const uint32_t n = query_.NumVertices();
  const bool injective = cs_.options().injective;
  const bool stop_armed = options.stop != nullptr && options.stop->armed();

  if (n == 1) {
    // No edges to seed on: vertex changes are the delta directly.
    for (VertexId v : changed_vertices) {
      if (v < cs_.Candidates(0).size() && cs_.Has(0, v)) {
        result.embeddings.push_back({v});
        if (options.limit != 0 && result.embeddings.size() >= options.limit) {
          result.complete = false;
          return result;
        }
      }
    }
    return result;
  }
  if (changed.empty()) return result;

  // Changed-edge index for the duplicate-suppression rule.
  std::unordered_map<uint64_t, uint32_t> changed_index;
  changed_index.reserve(changed.size() * 2);
  for (uint32_t i = 0; i < changed.size(); ++i) {
    changed_index.emplace(EdgeKey(changed[i].u, changed[i].v), i);
  }

  std::vector<VertexId> embedding(n, kInvalidVertex);
  uint64_t budget_counter = 0;
  bool stopped = false;

  auto poll_stop = [&]() {
    if (!stop_armed) return false;
    if (++budget_counter % kStopPollPeriod != 0) return false;
    if (options.stop->Check() != StopCause::kNone) stopped = true;
    return stopped;
  };

  // Accept M iff this seed is its canonical discoverer: the seed edge is
  // the minimum changed-edge index M uses, and the pinned query edge is
  // the first (ascending canonical order) query edge mapping onto it.
  // (For a fixed M a query edge maps onto the seed data edge in exactly
  // one orientation, so orientations never double-count.)
  auto accept = [&](uint32_t seed_i, size_t seed_qe) {
    const uint64_t seed_key = EdgeKey(changed[seed_i].u, changed[seed_i].v);
    uint32_t min_idx = static_cast<uint32_t>(-1);
    size_t first_qe_on_seed = static_cast<size_t>(-1);
    for (size_t qe = 0; qe < query_edges_.size(); ++qe) {
      const Edge& e = query_edges_[qe].first;
      const uint64_t key = EdgeKey(embedding[e.first], embedding[e.second]);
      auto it = changed_index.find(key);
      if (it == changed_index.end()) continue;
      min_idx = std::min(min_idx, it->second);
      if (key == seed_key && first_qe_on_seed == static_cast<size_t>(-1)) {
        first_qe_on_seed = qe;
      }
    }
    return min_idx == seed_i && first_qe_on_seed == seed_qe;
  };

  // DFS over the remaining query vertices in the seed's BFS order.
  auto extend = [&](auto&& self, const SeedOrder& so, uint32_t depth,
                    uint32_t seed_i, size_t seed_qe) -> bool {
    ++result.recursive_calls;
    if (poll_stop()) return false;
    if (depth == n) {
      if (accept(seed_i, seed_qe)) {
        result.embeddings.push_back(embedding);
        if (options.limit != 0 && result.embeddings.size() >= options.limit) {
          result.complete = false;
          return false;
        }
      }
      return true;
    }
    const VertexId u = so.order[depth];
    // Pivot: the first already-mapped query neighbor; its image's
    // adjacency generates the candidates.
    VertexId pivot = kInvalidVertex;
    Label pivot_elabel = 0;
    auto u_neighbors = query_.Neighbors(u);
    auto u_elabels = query_.NeighborEdgeLabels(u);
    for (size_t i = 0; i < u_neighbors.size(); ++i) {
      if (so.pos[u_neighbors[i]] < depth) {
        pivot = u_neighbors[i];
        pivot_elabel = u_elabels[i];
        break;
      }
    }
    assert(pivot != kInvalidVertex);  // BFS order guarantees one
    bool keep_going = true;
    const Bitset& cand = cs_.Candidates(u);
    dg.ForEachNeighbor(embedding[pivot], [&](VertexId v, Label el) {
      if (el != pivot_elabel) return true;
      if (v >= cand.size() || !cand.Test(v)) return true;
      if (injective) {
        for (uint32_t d = 0; d < depth; ++d) {
          if (embedding[so.order[d]] == v) return true;
        }
      }
      // Every other mapped neighbor must also be adjacent with the right
      // edge label.
      for (size_t i = 0; i < u_neighbors.size(); ++i) {
        const VertexId w = u_neighbors[i];
        if (w == pivot || so.pos[w] >= depth) continue;
        if (!dg.HasEdgeWithLabel(embedding[w], v, u_elabels[i])) return true;
      }
      embedding[u] = v;
      keep_going = self(self, so, depth + 1, seed_i, seed_qe);
      embedding[u] = kInvalidVertex;
      return keep_going;
    });
    return keep_going;
  };

  for (uint32_t i = 0; i < changed.size() && !stopped; ++i) {
    const EdgeUpdate& e = changed[i];
    for (size_t qe = 0; qe < query_edges_.size() && !stopped; ++qe) {
      if (query_edges_[qe].second != e.edge_label) continue;
      const VertexId x = query_edges_[qe].first.first;
      const VertexId y = query_edges_[qe].first.second;
      const SeedOrder& so = seed_orders_[qe];
      for (int o = 0; o < 2; ++o) {
        const VertexId a = o == 0 ? e.u : e.v;
        const VertexId b = o == 0 ? e.v : e.u;
        if (a >= cs_.Candidates(x).size() || !cs_.Has(x, a)) continue;
        if (b >= cs_.Candidates(y).size() || !cs_.Has(y, b)) continue;
        embedding[x] = a;
        embedding[y] = b;
        const bool keep = extend(extend, so, 2, i, qe);
        embedding[x] = kInvalidVertex;
        embedding[y] = kInvalidVertex;
        if (!keep && !stopped) {
          // Limit hit.
          result.complete = false;
          return result;
        }
        if (stopped) break;
      }
    }
  }
  if (stopped) result.complete = false;
  return result;
}

}  // namespace daf::dyn

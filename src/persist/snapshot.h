#ifndef DAF_PERSIST_SNAPSHOT_H_
#define DAF_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "graph/graph.h"

namespace daf::persist {

/// The "DAFS" versioned binary CSR snapshot format (docs/PERSISTENCE.md).
///
/// Layout (all integers little-endian/host, like the legacy DAFG format):
///
///   header (40 bytes):
///     u32 magic "DAFS" | u32 format_version | u64 graph_version |
///     u32 num_vertices | u32 flags (bit0 = edge-label section present) |
///     u64 num_edges | u32 section_count | u32 header_crc32
///   section table (section_count x 24 bytes, then u32 table_crc32):
///     u32 section_id | u32 payload_crc32 | u64 file_offset | u64 length
///   section payloads at their stated offsets:
///     1 labels    — u32 x |V|   (original label space, incl. tombstones)
///     2 offsets   — u64 x |V|+1 (CSR offsets)
///     3 adjacency — u32 x 2|E|  (per-vertex (dense label, id)-sorted)
///     4 edge labels — u32 x 2|E|, only when flags bit0 is set
///
/// Every region is covered by a CRC32 (crc32.h), so any corruption —
/// flipped bits, truncation, oversized section lengths — surfaces as a
/// typed load error, never UB; structural invariants are then re-checked
/// by Graph::FromCsrParts. Loading is bulk array reads plus an O(V + E
/// log deg) validation pass: no text parsing, no sorting — the cold-start
/// win measured by bench_recovery.

inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Header fields of a snapshot file (cheap to read: header only).
struct SnapshotInfo {
  uint64_t graph_version = 0;
  uint32_t num_vertices = 0;
  uint64_t num_edges = 0;
  bool has_edge_labels = false;
};

/// Writes `g` (at dynamic-graph version `graph_version`) to `path`,
/// fsyncing before close. Not atomic on its own — callers needing
/// crash-safe installation write to a temp path and rename (DurableStore
/// does; see FAULT_POINT(snapshot_rename) there). Polls
/// FAULT_POINT(snapshot_write) once per section, so a fault schedule can
/// fail — or a crash harness can SIGKILL — mid-file.
bool WriteSnapshot(const Graph& g, uint64_t graph_version,
                   const std::string& path, std::string* error);

/// Loads a snapshot. On success fills `*graph_version` (when non-null).
/// On any corruption or invariant violation returns std::nullopt with a
/// typed message in `*error`.
std::optional<Graph> LoadSnapshot(const std::string& path,
                                  uint64_t* graph_version,
                                  std::string* error);

/// Validates and returns just the header of a snapshot file.
std::optional<SnapshotInfo> ReadSnapshotInfo(const std::string& path,
                                             std::string* error);

/// True when the file begins with the DAFS magic.
bool SniffSnapshot(const std::string& path);

/// Loads a graph from any supported on-disk format, dispatching on the
/// leading magic: "DAFS" snapshot, legacy "DAFG" binary, else the text
/// format. Lets match_cli / daf_server `--data` accept all three.
std::optional<Graph> LoadGraphAnyFormat(const std::string& path,
                                        std::string* error);

}  // namespace daf::persist

#endif  // DAF_PERSIST_SNAPSHOT_H_

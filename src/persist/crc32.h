#ifndef DAF_PERSIST_CRC32_H_
#define DAF_PERSIST_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace daf::persist {

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial 0xEDB88320), table-driven.
/// Every checksum in the persistence layer — snapshot header, section
/// table, per-section payloads, WAL records — uses this one function so a
/// file written on one build always verifies on another.
namespace internal {
constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();
}  // namespace internal

/// Extends a running CRC over `len` more bytes. Start (and finish) with
/// `crc = 0` for a standalone checksum; to checksum several buffers as one
/// stream, feed the previous return value back in.
inline uint32_t Crc32(uint32_t crc, const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = internal::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

/// One-shot convenience.
inline uint32_t Crc32(const void* data, size_t len) {
  return Crc32(0, data, len);
}

}  // namespace daf::persist

#endif  // DAF_PERSIST_CRC32_H_

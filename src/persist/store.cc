#include "persist/store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/fault_inject.h"

namespace daf::persist {
namespace {

constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".dafs";
constexpr char kWalPrefix[] = "wal-";
constexpr char kWalSuffix[] = ".dafw";
constexpr char kTmpSuffix[] = ".tmp";

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = "store: " + msg;
  return false;
}

std::string VersionedName(const char* prefix, uint64_t version,
                          const char* suffix) {
  char buf[64];
  // Zero-padded so lexicographic directory order is version order.
  std::snprintf(buf, sizeof(buf), "%s%020" PRIu64 "%s", prefix, version,
                suffix);
  return buf;
}

bool ParseVersioned(const std::string& name, const char* prefix,
                    const char* suffix, uint64_t* version) {
  const size_t plen = std::strlen(prefix);
  const size_t slen = std::strlen(suffix);
  if (name.size() <= plen + slen) return false;
  if (name.compare(0, plen, prefix) != 0) return false;
  if (name.compare(name.size() - slen, slen, suffix) != 0) return false;
  uint64_t v = 0;
  for (size_t i = plen; i < name.size() - slen; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *version = v;
  return true;
}

bool EndsWith(const std::string& name, const char* suffix) {
  const size_t slen = std::strlen(suffix);
  return name.size() >= slen &&
         name.compare(name.size() - slen, slen, suffix) == 0;
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  return names;
}

bool FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

DurableStore::DurableStore(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {}

std::unique_ptr<DurableStore> DurableStore::Open(const std::string& dir,
                                                 const Options& options,
                                                 std::string* error) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    Fail(error, "cannot create data dir " + dir);
    return nullptr;
  }
  std::unique_ptr<DurableStore> store(new DurableStore(dir, options));
  if (!store->Recover(error)) return nullptr;
  return store;
}

bool DurableStore::Recover(std::string* error) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<uint64_t> snapshots;
  std::vector<uint64_t> wals;
  for (const std::string& name : ListDir(dir_)) {
    uint64_t v = 0;
    if (EndsWith(name, kTmpSuffix)) {
      // An in-flight write that never reached its rename: dead weight.
      std::remove((dir_ + "/" + name).c_str());
    } else if (ParseVersioned(name, kSnapshotPrefix, kSnapshotSuffix, &v)) {
      snapshots.push_back(v);
    } else if (ParseVersioned(name, kWalPrefix, kWalSuffix, &v)) {
      wals.push_back(v);
    }
  }
  if (snapshots.empty()) {
    if (!wals.empty()) {
      return Fail(error, "wal segments present without any snapshot");
    }
    return true;  // fresh directory; InitializeFresh seeds it
  }

  // Newest snapshot that validates wins; corrupt ones are skipped (the
  // retention window keeps a fallback), but *every* snapshot failing is an
  // error — recovery must never silently restart empty.
  std::sort(snapshots.rbegin(), snapshots.rend());
  std::optional<Graph> base;
  uint64_t snapshot_version = 0;
  std::string last_error = "none found";
  for (uint64_t v : snapshots) {
    const std::string path = dir_ + "/" + VersionedName(kSnapshotPrefix, v,
                                                        kSnapshotSuffix);
    base = LoadSnapshot(path, &snapshot_version, &last_error);
    if (base.has_value()) break;
    ++recovery_.snapshots_skipped;
  }
  if (!base.has_value()) {
    return Fail(error, "every snapshot is corrupt; last: " + last_error);
  }
  recovered_graph_.emplace(dyn::DeltaGraph::Restore(
      std::move(*base), options_.delta_options, snapshot_version));
  recovery_.recovered = true;
  recovery_.snapshot_version = snapshot_version;

  // Replay every segment in order. Records at or below the snapshot
  // version were folded into it already; the rest must be consecutive.
  std::sort(wals.begin(), wals.end());
  bool last_segment_dropped = false;
  for (size_t i = 0; i < wals.size(); ++i) {
    const bool last = i + 1 == wals.size();
    const std::string path =
        dir_ + "/" + VersionedName(kWalPrefix, wals[i], kWalSuffix);
    WalScanResult scan = ScanWal(
        path, [&](WalRecord&& record, std::string* cb_error) {
          if (record.version <= snapshot_version) {
            ++recovery_.wal_records_skipped;
            return true;
          }
          if (record.version != recovered_graph_->version() + 1) {
            *cb_error = "out-of-sequence record (version " +
                        std::to_string(record.version) + " at graph version " +
                        std::to_string(recovered_graph_->version()) + ")";
            return false;
          }
          const dyn::NormalizedBatch net = ToNormalizedBatch(
              record, recovered_graph_->NumVertices());
          const dyn::ApplyResult applied =
              recovered_graph_->ApplyNormalized(net,
                                                record.new_vertex_labels);
          if (!applied.ok) {
            *cb_error = "replay failed: " + applied.error;
            return false;
          }
          ++recovery_.wal_records_replayed;
          return true;
        });
    if (!scan.ok) {
      return Fail(error, path + ": " + scan.error);
    }
    if (scan.torn_bytes > 0) {
      if (!last) {
        // Rotated segments are immutable once a later one exists; torn
        // bytes here mean someone altered committed history.
        return Fail(error, path + ": torn tail in a non-final wal segment");
      }
      recovery_.wal_truncated_bytes = scan.torn_bytes;
      if (scan.valid_bytes == 0) {
        // Even the header is torn (crash during segment creation): the
        // file carries no records — recreate it below.
        std::remove(path.c_str());
        last_segment_dropped = true;
      } else if (!RepairTornTail(path, scan.valid_bytes, error)) {
        return false;
      }
    }
  }

  // Resume appending: reopen the final segment, or start a fresh one when
  // none is usable (fresh checkpoint crash paths).
  if (!wals.empty() && !last_segment_dropped) {
    const std::string path =
        dir_ + "/" + VersionedName(kWalPrefix, wals.back(), kWalSuffix);
    wal_ = WalWriter::OpenForAppend(path, options_.fsync_policy,
                                    options_.fsync_interval_ms, error);
    if (wal_ == nullptr) return false;
  } else if (!SwitchWal(recovered_graph_->version(), error)) {
    return false;
  }
  retired_wal_records_ =
      recovery_.wal_records_replayed + recovery_.wal_records_skipped;
  recovery_.recovery_ms = ElapsedMs(t0);
  return true;
}

dyn::DeltaGraph DurableStore::TakeRecoveredGraph() {
  dyn::DeltaGraph g = std::move(*recovered_graph_);
  recovered_graph_.reset();
  return g;
}

bool DurableStore::SwitchWal(uint64_t version, std::string* error) {
  std::unique_ptr<WalWriter> next = WalWriter::Create(
      dir_ + "/" + VersionedName(kWalPrefix, version, kWalSuffix), version,
      options_.fsync_policy, options_.fsync_interval_ms, error);
  if (next == nullptr) return false;
  if (wal_ != nullptr) {
    retired_wal_records_ += wal_->stats().appended_records;
    retired_wal_fsyncs_ += wal_->stats().fsyncs;
  }
  wal_ = std::move(next);
  return true;
}

bool DurableStore::InitializeFresh(const Graph& base, uint64_t version,
                                   std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string final_name =
      VersionedName(kSnapshotPrefix, version, kSnapshotSuffix);
  const std::string tmp = dir_ + "/" + final_name + kTmpSuffix;
  if (!WriteSnapshot(base, version, tmp, error)) return false;
  if (FAULT_POINT(snapshot_rename)) {
    std::remove(tmp.c_str());
    return Fail(error, "injected fault: snapshot_rename");
  }
  if (std::rename(tmp.c_str(), (dir_ + "/" + final_name).c_str()) != 0) {
    std::remove(tmp.c_str());
    return Fail(error, "cannot rename " + tmp);
  }
  if (!FsyncDir(dir_)) return Fail(error, "cannot fsync data dir");
  ++snapshots_written_;
  return SwitchWal(version, error);
}

bool DurableStore::AppendBatch(const dyn::NormalizedBatch& net,
                               const std::vector<Label>& new_vertex_labels,
                               uint64_t version, std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (failed_) return Fail(error, "store is fail-stopped");
  if (wal_ == nullptr) return Fail(error, "store not initialized");
  return wal_->Append(MakeWalRecord(net, new_vertex_labels, version), error);
}

bool DurableStore::RollbackLastAppend(std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (wal_ == nullptr) return Fail(error, "store not initialized");
  if (!wal_->RollbackLastAppend(error)) {
    // The log now claims a batch the graph never applied. Refusing all
    // future appends keeps the durable history a prefix of the truth.
    failed_ = true;
    ++persist_errors_;
    return false;
  }
  return true;
}

bool DurableStore::Sync(std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (wal_ == nullptr) return true;
  if (!wal_->Sync(error)) {
    ++persist_errors_;
    return false;
  }
  return true;
}

bool DurableStore::Checkpoint(const Graph& g, uint64_t version,
                              std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto t0 = std::chrono::steady_clock::now();
  const std::string final_name =
      VersionedName(kSnapshotPrefix, version, kSnapshotSuffix);
  const std::string tmp = dir_ + "/" + final_name + kTmpSuffix;
  if (!WriteSnapshot(g, version, tmp, error)) {
    ++persist_errors_;
    return false;
  }
  if (FAULT_POINT(snapshot_rename)) {
    std::remove(tmp.c_str());
    ++persist_errors_;
    return Fail(error, "injected fault: snapshot_rename");
  }
  if (std::rename(tmp.c_str(), (dir_ + "/" + final_name).c_str()) != 0) {
    std::remove(tmp.c_str());
    ++persist_errors_;
    return Fail(error, "cannot rename " + tmp);
  }
  if (!FsyncDir(dir_)) {
    ++persist_errors_;
    return Fail(error, "cannot fsync data dir");
  }
  ++snapshots_written_;
  last_snapshot_ms_ = ElapsedMs(t0);
  std::string rotate_error;
  if (!SwitchWal(version, &rotate_error)) {
    // The snapshot is durable; appends just continue into the old segment
    // (recovery skips its pre-snapshot records by version). Retention is
    // skipped so that segment survives.
    ++persist_errors_;
    return true;
  }
  ApplyRetention();
  return true;
}

void DurableStore::ApplyRetention() {
  std::vector<uint64_t> snapshots;
  std::vector<uint64_t> wals;
  for (const std::string& name : ListDir(dir_)) {
    uint64_t v = 0;
    if (ParseVersioned(name, kSnapshotPrefix, kSnapshotSuffix, &v)) {
      snapshots.push_back(v);
    } else if (ParseVersioned(name, kWalPrefix, kWalSuffix, &v)) {
      wals.push_back(v);
    }
  }
  std::sort(snapshots.rbegin(), snapshots.rend());
  const uint32_t keep = std::max<uint32_t>(options_.snapshots_to_keep, 1);
  if (snapshots.size() <= keep) return;
  const uint64_t oldest_kept = snapshots[keep - 1];
  for (size_t i = keep; i < snapshots.size(); ++i) {
    std::remove((dir_ + "/" + VersionedName(kSnapshotPrefix, snapshots[i],
                                            kSnapshotSuffix))
                    .c_str());
  }
  // Keep every segment the oldest kept snapshot might need: the newest
  // segment at or below it, plus everything later.
  std::sort(wals.begin(), wals.end());
  uint64_t cut = 0;
  for (uint64_t v : wals) {
    if (v <= oldest_kept) cut = v;
  }
  for (uint64_t v : wals) {
    if (v < cut) {
      std::remove(
          (dir_ + "/" + VersionedName(kWalPrefix, v, kWalSuffix)).c_str());
    }
  }
}

PersistStats DurableStore::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PersistStats stats;
  if (wal_ != nullptr) {
    stats.wal_bytes = wal_->stats().bytes;
    stats.wal_appended_batches =
        retired_wal_records_ + wal_->stats().appended_records;
    stats.wal_fsyncs = retired_wal_fsyncs_ + wal_->stats().fsyncs;
  }
  stats.snapshots_written = snapshots_written_;
  stats.persist_errors = persist_errors_;
  stats.failed = failed_;
  stats.last_snapshot_ms = last_snapshot_ms_;
  stats.recovery = recovery_;
  return stats;
}

bool DurableStore::failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

}  // namespace daf::persist

#include "persist/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "persist/crc32.h"
#include "util/fault_inject.h"

namespace daf::persist {
namespace {

// "DAFW" as a little-endian u32.
constexpr uint32_t kMagic = 0x57464144u;
constexpr uint64_t kHeaderBytes = 20;  // magic, version, start_version, crc
constexpr uint64_t kRecordHeaderBytes = 8;  // payload length + payload crc
// u64 version + four u32 element counts: the smallest legal payload.
constexpr uint32_t kMinPayloadBytes = 24;
// Hard cap on one record: a corrupt length field can never trigger a
// multi-gigabyte allocation.
constexpr uint32_t kMaxPayloadBytes = uint32_t{1} << 28;

void Put32(std::vector<uint8_t>& buf, uint32_t v) {
  const size_t at = buf.size();
  buf.resize(at + sizeof(v));
  std::memcpy(buf.data() + at, &v, sizeof(v));
}

void Put64(std::vector<uint8_t>& buf, uint64_t v) {
  const size_t at = buf.size();
  buf.resize(at + sizeof(v));
  std::memcpy(buf.data() + at, &v, sizeof(v));
}

/// Bounds-checked little reader over a payload buffer.
struct Cursor {
  const uint8_t* p;
  size_t left;
  bool ok = true;

  uint32_t Get32() {
    uint32_t v = 0;
    if (left < sizeof(v)) {
      ok = false;
      return 0;
    }
    std::memcpy(&v, p, sizeof(v));
    p += sizeof(v);
    left -= sizeof(v);
    return v;
  }
  uint64_t Get64() {
    uint64_t v = 0;
    if (left < sizeof(v)) {
      ok = false;
      return 0;
    }
    std::memcpy(&v, p, sizeof(v));
    p += sizeof(v);
    left -= sizeof(v);
    return v;
  }
};

std::vector<uint8_t> EncodePayload(const WalRecord& r) {
  std::vector<uint8_t> buf;
  buf.reserve(kMinPayloadBytes + 4 * r.new_vertex_labels.size() +
              12 * (r.inserts.size() + r.removes.size()) +
              4 * r.removed_vertices.size());
  Put64(buf, r.version);
  Put32(buf, static_cast<uint32_t>(r.new_vertex_labels.size()));
  for (Label l : r.new_vertex_labels) Put32(buf, l);
  auto put_edges = [&buf](const std::vector<dyn::EdgeUpdate>& edges) {
    Put32(buf, static_cast<uint32_t>(edges.size()));
    for (const dyn::EdgeUpdate& e : edges) {
      Put32(buf, e.u);
      Put32(buf, e.v);
      Put32(buf, e.edge_label);
    }
  };
  put_edges(r.inserts);
  put_edges(r.removes);
  Put32(buf, static_cast<uint32_t>(r.removed_vertices.size()));
  for (VertexId v : r.removed_vertices) Put32(buf, v);
  return buf;
}

bool DecodePayload(const uint8_t* data, size_t len, WalRecord* out) {
  Cursor c{data, len};
  out->version = c.Get64();
  auto get_count = [&c, len]() -> uint32_t {
    const uint32_t n = c.Get32();
    // Each element is at least 4 bytes, so a count beyond len/4 cannot be
    // honest — reject before resizing anything.
    if (n > len / 4) c.ok = false;
    return c.ok ? n : 0;
  };
  uint32_t n = get_count();
  out->new_vertex_labels.resize(n);
  for (uint32_t i = 0; i < n; ++i) out->new_vertex_labels[i] = c.Get32();
  auto get_edges = [&](std::vector<dyn::EdgeUpdate>* edges) {
    const uint32_t count = get_count();
    edges->resize(c.ok ? count : 0);
    for (uint32_t i = 0; i < count && c.ok; ++i) {
      (*edges)[i].u = c.Get32();
      (*edges)[i].v = c.Get32();
      (*edges)[i].edge_label = c.Get32();
    }
  };
  get_edges(&out->inserts);
  get_edges(&out->removes);
  n = get_count();
  out->removed_vertices.resize(c.ok ? n : 0);
  for (uint32_t i = 0; i < n && c.ok; ++i) {
    out->removed_vertices[i] = c.Get32();
  }
  return c.ok && c.left == 0;
}

std::vector<uint8_t> EncodeHeader(uint64_t start_version) {
  std::vector<uint8_t> buf;
  Put32(buf, kMagic);
  Put32(buf, kWalFormatVersion);
  Put64(buf, start_version);
  Put32(buf, Crc32(buf.data(), buf.size()));
  return buf;
}

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = "wal: " + msg;
  return false;
}

bool WriteAll(int fd, const uint8_t* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) return false;
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

int64_t SteadyMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryBatch:
      return "every";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "?";
}

bool ParseFsyncPolicy(const std::string& name, FsyncPolicy* out) {
  if (name == "every") {
    *out = FsyncPolicy::kEveryBatch;
  } else if (name == "interval") {
    *out = FsyncPolicy::kInterval;
  } else if (name == "off") {
    *out = FsyncPolicy::kOff;
  } else {
    return false;
  }
  return true;
}

WalRecord MakeWalRecord(const dyn::NormalizedBatch& net,
                        const std::vector<Label>& new_vertex_labels,
                        uint64_t version) {
  WalRecord r;
  r.version = version;
  r.new_vertex_labels = new_vertex_labels;
  r.inserts = net.inserts;
  r.removes = net.removes;
  r.removed_vertices = net.removed_vertices;
  return r;
}

dyn::NormalizedBatch ToNormalizedBatch(const WalRecord& record,
                                       VertexId first_new_vertex_id) {
  dyn::NormalizedBatch net;
  net.inserts = record.inserts;
  net.removes = record.removes;
  net.removed_vertices = record.removed_vertices;
  net.new_vertices.reserve(record.new_vertex_labels.size());
  for (uint32_t i = 0; i < record.new_vertex_labels.size(); ++i) {
    net.new_vertices.push_back(first_new_vertex_id + i);
  }
  return net;
}

WalWriter::WalWriter(int fd, std::string path, uint64_t size,
                     FsyncPolicy policy, uint64_t fsync_interval_ms)
    : fd_(fd),
      path_(std::move(path)),
      policy_(policy),
      fsync_interval_ms_(fsync_interval_ms),
      last_sync_ms_(SteadyMs()) {
  stats_.bytes = size;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<WalWriter> WalWriter::Create(const std::string& path,
                                             uint64_t start_version,
                                             FsyncPolicy policy,
                                             uint64_t fsync_interval_ms,
                                             std::string* error) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    Fail(error, "cannot create " + path);
    return nullptr;
  }
  const std::vector<uint8_t> header = EncodeHeader(start_version);
  if (!WriteAll(fd, header.data(), header.size()) || ::fsync(fd) != 0) {
    ::close(fd);
    std::remove(path.c_str());
    Fail(error, "cannot write header of " + path);
    return nullptr;
  }
  return std::unique_ptr<WalWriter>(new WalWriter(
      fd, path, header.size(), policy, fsync_interval_ms));
}

std::unique_ptr<WalWriter> WalWriter::OpenForAppend(
    const std::string& path, FsyncPolicy policy, uint64_t fsync_interval_ms,
    std::string* error) {
  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) {
    Fail(error, "cannot open " + path + " for append");
    return nullptr;
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0 ||
      ::lseek(fd, 0, SEEK_END) != static_cast<off_t>(st.st_size)) {
    ::close(fd);
    Fail(error, "cannot position " + path + " for append");
    return nullptr;
  }
  return std::unique_ptr<WalWriter>(new WalWriter(
      fd, path, static_cast<uint64_t>(st.st_size), policy,
      fsync_interval_ms));
}

bool WalWriter::TruncateTo(uint64_t size, std::string* error) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0 ||
      ::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
    return Fail(error, "truncate of " + path_ + " failed");
  }
  stats_.bytes = size;
  return true;
}

bool WalWriter::Append(const WalRecord& record, std::string* error) {
  const std::vector<uint8_t> payload = EncodePayload(record);
  std::vector<uint8_t> buf;
  buf.reserve(kRecordHeaderBytes + payload.size());
  Put32(buf, static_cast<uint32_t>(payload.size()));
  Put32(buf, Crc32(payload.data(), payload.size()));
  buf.insert(buf.end(), payload.begin(), payload.end());

  const uint64_t record_start = stats_.bytes;
  // First poll: fail before a single byte lands.
  if (FAULT_POINT(wal_append)) {
    return Fail(error, "injected fault: wal_append");
  }
  const size_t split = buf.size() / 2;
  if (!WriteAll(fd_, buf.data(), split)) {
    TruncateTo(record_start, nullptr);
    return Fail(error, "append write failed");
  }
  // Second poll, mid-record: a simulated failure rolls the half-record
  // back; a crash schedule SIGKILLs here, leaving a genuine torn tail for
  // recovery to truncate.
  if (FAULT_POINT(wal_append)) {
    TruncateTo(record_start, nullptr);
    return Fail(error, "injected fault: wal_append (mid-record)");
  }
  if (!WriteAll(fd_, buf.data() + split, buf.size() - split)) {
    TruncateTo(record_start, nullptr);
    return Fail(error, "append write failed");
  }
  stats_.bytes += buf.size();

  bool want_sync = false;
  switch (policy_) {
    case FsyncPolicy::kEveryBatch:
      want_sync = true;
      break;
    case FsyncPolicy::kInterval:
      want_sync = SteadyMs() - last_sync_ms_ >=
                  static_cast<int64_t>(fsync_interval_ms_);
      break;
    case FsyncPolicy::kOff:
      break;
  }
  if (want_sync && !SyncNow(error)) {
    TruncateTo(record_start, nullptr);
    return false;  // error already set; file rolled back
  }
  last_append_offset_ = record_start;
  ++stats_.appended_records;
  return true;
}

bool WalWriter::SyncNow(std::string* error) {
  if (FAULT_POINT(wal_fsync)) {
    return Fail(error, "injected fault: wal_fsync");
  }
  if (::fsync(fd_) != 0) return Fail(error, "fsync failed");
  ++stats_.fsyncs;
  last_sync_ms_ = SteadyMs();
  return true;
}

bool WalWriter::Sync(std::string* error) { return SyncNow(error); }

bool WalWriter::RollbackLastAppend(std::string* error) {
  if (stats_.appended_records == 0 || last_append_offset_ >= stats_.bytes) {
    return Fail(error, "no append to roll back");
  }
  if (!TruncateTo(last_append_offset_, error)) return false;
  --stats_.appended_records;
  return true;
}

WalScanResult ScanWal(
    const std::string& path,
    const std::function<bool(WalRecord&&, std::string* error)>& on_record) {
  WalScanResult result;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    Fail(&result.error, "cannot open " + path);
    return result;
  }
  std::fseek(f, 0, SEEK_END);
  const uint64_t file_size = static_cast<uint64_t>(std::ftell(f));
  std::fseek(f, 0, SEEK_SET);

  auto finish = [&](bool ok) {
    std::fclose(f);
    result.ok = ok;
    if (ok) {
      result.torn_bytes = file_size - result.valid_bytes;
      result.error.clear();
    }
    return result;
  };
  auto mid_file = [&](const std::string& msg) {
    Fail(&result.error, msg);
    return finish(false);
  };

  // Header. A short or CRC-bad header *ending at EOF* is a torn creation
  // (crash while the file was being set up): valid prefix is empty and the
  // caller recreates the file. Bad header bytes with records after them
  // are mid-file corruption.
  uint8_t header[kHeaderBytes];
  if (std::fread(header, 1, kHeaderBytes, f) != kHeaderBytes) {
    return finish(true);  // torn header, valid_bytes = 0
  }
  uint32_t magic = 0, version = 0, crc = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&version, header + 4, 4);
  std::memcpy(&result.start_version, header + 8, 8);
  std::memcpy(&crc, header + 16, 4);
  if (magic != kMagic || version != kWalFormatVersion ||
      crc != Crc32(header, kHeaderBytes - 4)) {
    if (file_size == kHeaderBytes) {
      result.start_version = 0;
      return finish(true);  // torn header at EOF
    }
    return mid_file(magic != kMagic ? "bad magic (not DAFW)"
                                    : "header CRC/version mismatch");
  }
  result.valid_bytes = kHeaderBytes;

  std::vector<uint8_t> payload;
  for (;;) {
    const uint64_t record_start = result.valid_bytes;
    uint8_t rec_header[kRecordHeaderBytes];
    const size_t got = std::fread(rec_header, 1, kRecordHeaderBytes, f);
    if (got == 0) return finish(true);  // clean end
    if (got < kRecordHeaderBytes) return finish(true);  // torn tail
    uint32_t len = 0, want_crc = 0;
    std::memcpy(&len, rec_header, 4);
    std::memcpy(&want_crc, rec_header + 4, 4);
    const uint64_t extent = record_start + kRecordHeaderBytes + len;
    if (len < kMinPayloadBytes || len > kMaxPayloadBytes) {
      // A garbage length that claims bytes past EOF is indistinguishable
      // from a torn header — truncate. One that fits inside the file is a
      // corrupted record in the middle of committed history — error.
      if (extent > file_size) return finish(true);
      return mid_file("implausible record length");
    }
    if (extent > file_size) return finish(true);  // torn tail
    payload.resize(len);
    if (std::fread(payload.data(), 1, len, f) != len) {
      return finish(true);  // torn tail (racing truncate)
    }
    if (Crc32(payload.data(), len) != want_crc) {
      if (extent == file_size) return finish(true);  // torn final record
      return mid_file("record CRC mismatch mid-file");
    }
    WalRecord record;
    if (!DecodePayload(payload.data(), len, &record)) {
      return mid_file("malformed record payload");
    }
    if (on_record != nullptr) {
      std::string cb_error;
      if (!on_record(std::move(record), &cb_error)) {
        Fail(&result.error, cb_error);
        return finish(false);
      }
    }
    ++result.records;
    result.valid_bytes = extent;
  }
}

bool RepairTornTail(const std::string& path, uint64_t valid_bytes,
                    std::string* error) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return Fail(error, "cannot truncate torn tail of " + path);
  }
  return true;
}

}  // namespace daf::persist

#include "persist/snapshot.h"

#include <unistd.h>

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "graph/io.h"
#include "persist/crc32.h"
#include "util/fault_inject.h"

namespace daf::persist {
namespace {

// "DAFS" as a little-endian u32 ('D' first byte on disk).
constexpr uint32_t kMagic = 0x53464144u;

// Same hardening caps as the text/DAFG loaders (graph/io.cc): a corrupt
// header can never make the reader allocate beyond them.
constexpr uint64_t kMaxVertices = uint64_t{1} << 28;
constexpr uint64_t kMaxEdges = uint64_t{1} << 31;
constexpr uint32_t kMaxSections = 16;

enum SectionId : uint32_t {
  kSectionLabels = 1,
  kSectionOffsets = 2,
  kSectionAdjacency = 3,
  kSectionEdgeLabels = 4,
};

struct Header {
  uint32_t magic = 0;
  uint32_t format_version = 0;
  uint64_t graph_version = 0;
  uint32_t num_vertices = 0;
  uint32_t flags = 0;  // bit0: edge-label section present
  uint64_t num_edges = 0;
  uint32_t section_count = 0;
  uint32_t header_crc = 0;
};
static_assert(sizeof(Header) == 40, "header layout must be padding-free");

struct SectionEntry {
  uint32_t id = 0;
  uint32_t crc = 0;
  uint64_t offset = 0;
  uint64_t length = 0;  // bytes
};
static_assert(sizeof(SectionEntry) == 24, "entry layout must be padding-free");

constexpr uint32_t kFlagEdgeLabels = 1u;

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = "snapshot: " + msg;
  return false;
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool ReadExact(std::FILE* f, void* out, size_t bytes) {
  return std::fread(out, 1, bytes, f) == bytes;
}

/// Reads and fully validates header + section table. Returns false with a
/// typed error on any mismatch. `file_size` bounds every section extent.
bool ReadValidatedHeader(std::FILE* f, uint64_t file_size, Header* header,
                         std::vector<SectionEntry>* table,
                         std::string* error) {
  if (!ReadExact(f, header, sizeof(Header))) {
    return Fail(error, "file too short for header");
  }
  if (header->magic != kMagic) return Fail(error, "bad magic (not DAFS)");
  if (header->format_version != kSnapshotFormatVersion) {
    return Fail(error, "unsupported format version");
  }
  const uint32_t want_crc =
      Crc32(header, offsetof(Header, header_crc));
  if (header->header_crc != want_crc) {
    return Fail(error, "header CRC mismatch");
  }
  if (header->num_vertices > kMaxVertices) {
    return Fail(error, "vertex count exceeds loader cap");
  }
  if (header->num_edges > kMaxEdges) {
    return Fail(error, "edge count exceeds loader cap");
  }
  if (header->section_count == 0 || header->section_count > kMaxSections) {
    return Fail(error, "implausible section count");
  }
  table->resize(header->section_count);
  const size_t table_bytes = table->size() * sizeof(SectionEntry);
  if (!ReadExact(f, table->data(), table_bytes)) {
    return Fail(error, "file too short for section table");
  }
  uint32_t table_crc = 0;
  if (!ReadExact(f, &table_crc, sizeof(table_crc))) {
    return Fail(error, "file too short for section table CRC");
  }
  if (table_crc != Crc32(table->data(), table_bytes)) {
    return Fail(error, "section table CRC mismatch");
  }
  for (const SectionEntry& e : *table) {
    if (e.offset > file_size || e.length > file_size - e.offset) {
      return Fail(error, "section extent exceeds file size");
    }
  }
  return true;
}

const SectionEntry* FindSection(const std::vector<SectionEntry>& table,
                                uint32_t id, bool* duplicate) {
  const SectionEntry* found = nullptr;
  for (const SectionEntry& e : table) {
    if (e.id != id) continue;
    if (found != nullptr) {
      *duplicate = true;
      return nullptr;
    }
    found = &e;
  }
  return found;
}

/// Reads one section into `out` (element count derived from the entry),
/// verifying the expected byte length and the payload CRC.
template <typename T>
bool ReadSection(std::FILE* f, const std::vector<SectionEntry>& table,
                 uint32_t id, const char* name, uint64_t expected_elems,
                 std::vector<T>* out, std::string* error) {
  bool duplicate = false;
  const SectionEntry* e = FindSection(table, id, &duplicate);
  if (duplicate) {
    return Fail(error, std::string("duplicate ") + name + " section");
  }
  if (e == nullptr) {
    return Fail(error, std::string("missing ") + name + " section");
  }
  if (e->length != expected_elems * sizeof(T)) {
    return Fail(error, std::string(name) + " section has wrong length");
  }
  if (std::fseek(f, static_cast<long>(e->offset), SEEK_SET) != 0) {
    return Fail(error, std::string("seek to ") + name + " section failed");
  }
  out->resize(expected_elems);
  if (!ReadExact(f, out->data(), e->length)) {
    return Fail(error, std::string(name) + " section truncated");
  }
  if (Crc32(out->data(), e->length) != e->crc) {
    return Fail(error, std::string(name) + " section CRC mismatch");
  }
  return true;
}

uint64_t FileSize(std::FILE* f) {
  const long pos = std::ftell(f);
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  std::fseek(f, pos, SEEK_SET);
  return end < 0 ? 0 : static_cast<uint64_t>(end);
}

}  // namespace

bool WriteSnapshot(const Graph& g, uint64_t graph_version,
                   const std::string& path, std::string* error) {
  Graph::CsrParts parts = g.ToCsrParts();
  const bool has_edge_labels = !parts.edge_labels.empty();

  struct Payload {
    uint32_t id;
    const void* data;
    uint64_t bytes;
  };
  std::vector<Payload> payloads = {
      {kSectionLabels, parts.labels.data(),
       parts.labels.size() * sizeof(Label)},
      {kSectionOffsets, parts.offsets.data(),
       parts.offsets.size() * sizeof(uint64_t)},
      {kSectionAdjacency, parts.adjacency.data(),
       parts.adjacency.size() * sizeof(VertexId)},
  };
  if (has_edge_labels) {
    payloads.push_back({kSectionEdgeLabels, parts.edge_labels.data(),
                        parts.edge_labels.size() * sizeof(Label)});
  }

  Header header;
  header.magic = kMagic;
  header.format_version = kSnapshotFormatVersion;
  header.graph_version = graph_version;
  header.num_vertices = g.NumVertices();
  header.flags = has_edge_labels ? kFlagEdgeLabels : 0;
  header.num_edges = g.NumEdges();
  header.section_count = static_cast<uint32_t>(payloads.size());
  header.header_crc = Crc32(&header, offsetof(Header, header_crc));

  std::vector<SectionEntry> table(payloads.size());
  uint64_t cursor = sizeof(Header) +
                    payloads.size() * sizeof(SectionEntry) +
                    sizeof(uint32_t);
  for (size_t i = 0; i < payloads.size(); ++i) {
    table[i].id = payloads[i].id;
    table[i].crc = Crc32(payloads[i].data,
                         static_cast<size_t>(payloads[i].bytes));
    table[i].offset = cursor;
    table[i].length = payloads[i].bytes;
    cursor += payloads[i].bytes;
  }
  const uint32_t table_crc =
      Crc32(table.data(), table.size() * sizeof(SectionEntry));

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Fail(error, "cannot open " + path + " for write");
  auto abort_write = [&](const std::string& msg) {
    f.reset();
    std::remove(path.c_str());
    return Fail(error, msg);
  };
  if (std::fwrite(&header, 1, sizeof(header), f.get()) != sizeof(header) ||
      std::fwrite(table.data(), 1, table.size() * sizeof(SectionEntry),
                  f.get()) != table.size() * sizeof(SectionEntry) ||
      std::fwrite(&table_crc, 1, sizeof(table_crc), f.get()) !=
          sizeof(table_crc)) {
    return abort_write("short write (header)");
  }
  for (const Payload& p : payloads) {
    // One poll per section: a chaos schedule can fail the write — and the
    // crash oracle can SIGKILL the process — with the file half-written.
    if (FAULT_POINT(snapshot_write)) {
      return abort_write("injected fault: snapshot_write");
    }
    if (std::fwrite(p.data, 1, static_cast<size_t>(p.bytes), f.get()) !=
        p.bytes) {
      return abort_write("short write (section)");
    }
  }
  if (std::fflush(f.get()) != 0 || ::fsync(fileno(f.get())) != 0) {
    return abort_write("flush/fsync failed");
  }
  f.reset();
  if (error != nullptr) error->clear();
  return true;
}

std::optional<Graph> LoadSnapshot(const std::string& path,
                                  uint64_t* graph_version,
                                  std::string* error) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    Fail(error, "cannot open " + path);
    return std::nullopt;
  }
  const uint64_t file_size = FileSize(f.get());
  Header header;
  std::vector<SectionEntry> table;
  if (!ReadValidatedHeader(f.get(), file_size, &header, &table, error)) {
    return std::nullopt;
  }

  Graph::CsrParts parts;
  const uint64_t n = header.num_vertices;
  const uint64_t directed = 2 * header.num_edges;
  if (!ReadSection(f.get(), table, kSectionLabels, "label", n, &parts.labels,
                   error) ||
      !ReadSection(f.get(), table, kSectionOffsets, "offset", n + 1,
                   &parts.offsets, error) ||
      !ReadSection(f.get(), table, kSectionAdjacency, "adjacency", directed,
                   &parts.adjacency, error)) {
    return std::nullopt;
  }
  if ((header.flags & kFlagEdgeLabels) != 0) {
    if (!ReadSection(f.get(), table, kSectionEdgeLabels, "edge-label",
                     directed, &parts.edge_labels, error)) {
      return std::nullopt;
    }
  }
  f.reset();

  std::string parts_error;
  std::optional<Graph> g = Graph::FromCsrParts(std::move(parts),
                                               &parts_error);
  if (!g.has_value()) {
    Fail(error, "invalid CSR payload: " + parts_error);
    return std::nullopt;
  }
  if (graph_version != nullptr) *graph_version = header.graph_version;
  if (error != nullptr) error->clear();
  return g;
}

std::optional<SnapshotInfo> ReadSnapshotInfo(const std::string& path,
                                             std::string* error) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    Fail(error, "cannot open " + path);
    return std::nullopt;
  }
  Header header;
  std::vector<SectionEntry> table;
  if (!ReadValidatedHeader(f.get(), FileSize(f.get()), &header, &table,
                           error)) {
    return std::nullopt;
  }
  SnapshotInfo info;
  info.graph_version = header.graph_version;
  info.num_vertices = header.num_vertices;
  info.num_edges = header.num_edges;
  info.has_edge_labels = (header.flags & kFlagEdgeLabels) != 0;
  if (error != nullptr) error->clear();
  return info;
}

bool SniffSnapshot(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return false;
  uint32_t magic = 0;
  return ReadExact(f.get(), &magic, sizeof(magic)) && magic == kMagic;
}

std::optional<Graph> LoadGraphAnyFormat(const std::string& path,
                                        std::string* error) {
  char magic[4] = {};
  {
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (f == nullptr) {
      if (error != nullptr) *error = "cannot open " + path;
      return std::nullopt;
    }
    // A file shorter than 4 bytes can only be (malformed) text.
    (void)std::fread(magic, 1, sizeof(magic), f.get());
  }
  if (std::memcmp(magic, "DAFS", 4) == 0) {
    return LoadSnapshot(path, nullptr, error);
  }
  if (std::memcmp(magic, "DAFG", 4) == 0) {
    return LoadGraphBinary(path, error);
  }
  return LoadGraph(path, error);
}

}  // namespace daf::persist

#ifndef DAF_PERSIST_STORE_H_
#define DAF_PERSIST_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dyn/delta_graph.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace daf::persist {

/// What recovery found and did (surfaced in the ServiceMetrics `persist`
/// block and asserted by the crash oracle).
struct RecoveryInfo {
  bool recovered = false;           // true when prior state was loaded
  uint64_t snapshot_version = 0;    // version of the snapshot restored
  uint64_t snapshots_skipped = 0;   // newer-but-corrupt snapshots passed over
  uint64_t wal_records_replayed = 0;
  uint64_t wal_records_skipped = 0;  // records at/below the snapshot version
  uint64_t wal_truncated_bytes = 0;  // torn tail removed from the last log
  double recovery_ms = 0;
};

/// Counters for the metrics JSON.
struct PersistStats {
  uint64_t wal_bytes = 0;
  uint64_t wal_appended_batches = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t snapshots_written = 0;
  uint64_t persist_errors = 0;   // non-fatal IO errors (failed checkpoint, ...)
  bool failed = false;           // fail-stop latch tripped
  double last_snapshot_ms = 0;   // wall time of the last checkpoint
  RecoveryInfo recovery;
};

/// A directory of durable match-service state:
///
///   <dir>/snapshot-<version>.dafs   versioned binary CSR snapshots
///   <dir>/wal-<version>.dafw        WAL segments; <version> is the
///                                   snapshot version the segment extends
///   <dir>/*.tmp                     in-flight writes (deleted at Open)
///
/// Protocol (docs/PERSISTENCE.md):
///   * Every committed batch is appended (its *normalized* form) to the
///     active WAL segment before DeltaGraph applies it.
///   * A checkpoint writes snapshot-<v>.dafs.tmp, fsyncs, renames into
///     place, fsyncs the directory, then starts a fresh wal-<v>.dafw and
///     retires files older than the retention window. The rename is the
///     commit point — a crash on either side leaves a recoverable dir.
///   * Open() recovers: newest snapshot that validates (corrupt ones are
///     skipped with a counter; if every snapshot is corrupt that is an
///     error, not a silent empty start), then every WAL segment in order —
///     records at or below the snapshot version are skipped, the rest must
///     be consecutive. A torn tail in the final segment is truncated; torn
///     or corrupt bytes anywhere else are a typed error.
///
/// Concurrency: writer methods (AppendBatch/Rollback/Checkpoint/Sync) must
/// be externally serialized — MatchService's update mutex does — while
/// Stats() may race them (an internal mutex makes it safe).
///
/// Fail-stop: if a rollback cannot restore the WAL to its pre-append state
/// the store latches `failed` and refuses further appends; the one thing a
/// durable log must never do is disagree with what the service reported
/// committed.
class DurableStore {
 public:
  struct Options {
    FsyncPolicy fsync_policy = FsyncPolicy::kEveryBatch;
    uint64_t fsync_interval_ms = 50;
    /// DeltaGraph options used for the recovered graph (must match the
    /// service's, or the recovered graph compacts on a different cadence).
    dyn::DeltaGraph::Options delta_options;
    /// Snapshots kept after a checkpoint (older ones + their WAL segments
    /// are deleted). At least 1; 2 keeps a fallback if the newest is
    /// damaged later.
    uint32_t snapshots_to_keep = 2;
  };

  /// Opens (creating the directory if needed) and runs recovery. Returns
  /// nullptr with `*error` on unrecoverable state (mid-file WAL
  /// corruption, every snapshot corrupt, IO failure). A clean empty
  /// directory opens successfully with has_state() == false.
  static std::unique_ptr<DurableStore> Open(const std::string& dir,
                                            const Options& options,
                                            std::string* error);

  /// True when Open() recovered prior state; TakeRecoveredGraph() is then
  /// valid exactly once.
  bool has_state() const { return recovered_graph_.has_value(); }

  /// Moves out the recovered DeltaGraph (version restored, tombstones
  /// dead, WAL replayed). Precondition: has_state().
  dyn::DeltaGraph TakeRecoveredGraph();

  /// Seeds an empty directory: writes snapshot-<version> of `base` and
  /// starts its WAL segment. Precondition: !has_state().
  bool InitializeFresh(const Graph& base, uint64_t version,
                       std::string* error);

  /// Appends the normalized batch that is about to be applied at
  /// `version`. On failure nothing was persisted and the caller must
  /// reject the batch (append-before-apply: an unlogged batch must never
  /// be applied).
  bool AppendBatch(const dyn::NormalizedBatch& net,
                   const std::vector<Label>& new_vertex_labels,
                   uint64_t version, std::string* error);

  /// Undoes the last AppendBatch because the apply failed. If the WAL
  /// cannot be rolled back the store latches fail-stop.
  bool RollbackLastAppend(std::string* error);

  /// Fsyncs the active WAL segment (graceful shutdown, explicit flush).
  bool Sync(std::string* error);

  /// Writes a snapshot of `g` (the materialized state at `version`),
  /// rotates the WAL, and applies retention. Failure is non-fatal: the
  /// WAL still holds everything since the last good snapshot.
  bool Checkpoint(const Graph& g, uint64_t version, std::string* error);

  PersistStats Stats() const;
  const RecoveryInfo& recovery() const { return recovery_; }
  const std::string& dir() const { return dir_; }
  bool failed() const;

 private:
  DurableStore(std::string dir, Options options);

  bool Recover(std::string* error);
  bool SwitchWal(uint64_t version, std::string* error);
  void ApplyRetention();

  const std::string dir_;
  const Options options_;

  mutable std::mutex mutex_;
  std::unique_ptr<WalWriter> wal_;
  std::optional<dyn::DeltaGraph> recovered_graph_;
  RecoveryInfo recovery_;
  uint64_t snapshots_written_ = 0;
  uint64_t persist_errors_ = 0;
  double last_snapshot_ms_ = 0;
  bool failed_ = false;
  // Stats of retired WAL segments (rotation resets the writer's own).
  uint64_t retired_wal_records_ = 0;
  uint64_t retired_wal_fsyncs_ = 0;
};

}  // namespace daf::persist

#endif  // DAF_PERSIST_STORE_H_

#ifndef DAF_PERSIST_WAL_H_
#define DAF_PERSIST_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dyn/update_batch.h"
#include "graph/graph.h"

namespace daf::persist {

/// The "DAFW" write-ahead log (docs/PERSISTENCE.md).
///
/// One file = a 20-byte header (u32 magic "DAFW" | u32 format_version |
/// u64 start_version | u32 header_crc32) followed by length-prefixed
/// records: u32 payload_length | u32 payload_crc32 | payload. The payload
/// serializes one *normalized* batch — the net change DeltaGraph actually
/// installed, plus the labels of vertices it added — tagged with the graph
/// version the batch produced. Replaying normalized (not raw) batches is
/// what keeps label-change edges exact: a raw UpdateBatch re-application
/// would let its removals shadow the reinsertion.
///
/// Durability is a policy choice per writer:
///   * kEveryBatch — fsync after each append (no committed batch is ever
///     lost, slowest);
///   * kInterval   — fsync at most once per `fsync_interval_ms` (bounded
///     loss window on power failure; a clean SIGKILL loses nothing since
///     written pages survive the process);
///   * kOff        — never fsync except on explicit Sync() (fastest; the
///     bench_dynamic --persist gate measures this mode's overhead).
enum class FsyncPolicy { kEveryBatch, kInterval, kOff };

const char* FsyncPolicyName(FsyncPolicy policy);
/// Parses "every" / "interval" / "off"; returns false on anything else.
bool ParseFsyncPolicy(const std::string& name, FsyncPolicy* out);

inline constexpr uint32_t kWalFormatVersion = 1;

/// One durable record: the net change of a committed batch. `version` is
/// the DeltaGraph version *after* the batch (records in a healthy log are
/// consecutive). `new_vertex_labels` align with the ids the batch
/// assigned, which replay recomputes as NumVertices(), NumVertices()+1, …
struct WalRecord {
  uint64_t version = 0;
  std::vector<Label> new_vertex_labels;
  std::vector<dyn::EdgeUpdate> inserts;
  std::vector<dyn::EdgeUpdate> removes;
  std::vector<VertexId> removed_vertices;
};

/// Builds the record for a batch: `net` from DeltaGraph::Normalize,
/// `new_vertex_labels` from the originating batch's add_vertices, and the
/// version the apply will produce.
WalRecord MakeWalRecord(const dyn::NormalizedBatch& net,
                        const std::vector<Label>& new_vertex_labels,
                        uint64_t version);

/// Reconstructs the NormalizedBatch for replay. `first_new_vertex_id` is
/// the replaying graph's current NumVertices().
dyn::NormalizedBatch ToNormalizedBatch(const WalRecord& record,
                                       VertexId first_new_vertex_id);

/// Appender. Writes go straight to a file descriptor (no stdio buffer), so
/// after a SIGKILL the file holds exactly the bytes written — at worst one
/// torn final record, which recovery truncates. Not thread-safe; the
/// caller serializes (MatchService's update mutex already does).
///
/// Fault points: `wal_append` is polled twice per append — before the
/// first byte (clean simulated failure) and mid-record (simulated failure
/// rolls the partial bytes back; a crash schedule leaves a genuine torn
/// tail). `wal_fsync` is polled before each policy-driven fsync.
class WalWriter {
 public:
  struct Stats {
    uint64_t appended_records = 0;
    uint64_t fsyncs = 0;
    uint64_t bytes = 0;  // current file size
  };

  /// Creates a fresh log at `path` (truncating), writing + fsyncing the
  /// header. `start_version` is the version of the snapshot this log
  /// extends; replay skips nothing below it.
  static std::unique_ptr<WalWriter> Create(const std::string& path,
                                           uint64_t start_version,
                                           FsyncPolicy policy,
                                           uint64_t fsync_interval_ms,
                                           std::string* error);

  /// Opens an existing, already scanned-and-repaired log for appending.
  static std::unique_ptr<WalWriter> OpenForAppend(const std::string& path,
                                                  FsyncPolicy policy,
                                                  uint64_t fsync_interval_ms,
                                                  std::string* error);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record and applies the fsync policy. On failure (fault or
  /// IO error) any partially written bytes are truncated away — the file
  /// is exactly as before the call — and false is returned.
  bool Append(const WalRecord& record, std::string* error);

  /// Undoes the most recent successful Append (the batch it logged failed
  /// to apply). Only valid directly after that Append.
  bool RollbackLastAppend(std::string* error);

  /// Unconditional fsync (graceful shutdown, policy kOff checkpoints).
  bool Sync(std::string* error);

  const Stats& stats() const { return stats_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(int fd, std::string path, uint64_t size, FsyncPolicy policy,
            uint64_t fsync_interval_ms);
  bool SyncNow(std::string* error);
  bool TruncateTo(uint64_t size, std::string* error);

  int fd_ = -1;
  std::string path_;
  FsyncPolicy policy_;
  uint64_t fsync_interval_ms_;
  uint64_t last_append_offset_ = 0;
  int64_t last_sync_ms_ = 0;  // steady-clock ms of the last fsync
  Stats stats_;
};

/// Result of scanning a log.
struct WalScanResult {
  bool ok = false;         // false => `error` (mid-file corruption, ...)
  std::string error;
  uint64_t start_version = 0;  // from the header
  uint64_t records = 0;        // records delivered to the callback
  uint64_t valid_bytes = 0;    // prefix length up to the last good record
  uint64_t torn_bytes = 0;     // trailing bytes past valid_bytes (torn tail)
};

/// Scans `path`, invoking `on_record` for each CRC-valid record in order.
///
/// Tail rule: a record whose extent runs past EOF, or whose CRC fails with
/// the record ending exactly at EOF, is a *torn tail* — the scan stops,
/// reports ok with torn_bytes > 0, and the caller truncates (see
/// RepairTornTail). A CRC failure with further bytes beyond the record is
/// *mid-file corruption*: ok = false with a typed error, because silently
/// resuming past it would replay a different history than was committed.
/// `on_record` may abort the scan by returning false with `*error` set.
WalScanResult ScanWal(
    const std::string& path,
    const std::function<bool(WalRecord&&, std::string* error)>& on_record);

/// Truncates `path` to `valid_bytes` (a torn tail found by ScanWal).
bool RepairTornTail(const std::string& path, uint64_t valid_bytes,
                    std::string* error);

}  // namespace daf::persist

#endif  // DAF_PERSIST_WAL_H_

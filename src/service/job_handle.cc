#include "service/job_handle.h"

#include <chrono>

namespace daf::service {

void JobHandle::Cancel() {
  state_->cancel.Cancel();
  // Wake a producer blocked on backpressure and any consumer blocked in
  // Wait/NextBatch so both observe the request promptly.
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->producer_cv.notify_all();
  state_->consumer_cv.notify_all();
}

JobStatus JobHandle::Wait() {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->consumer_cv.wait(lock, [&] { return state_->finished; });
  return state_->status.load(std::memory_order_acquire);
}

JobStatus JobHandle::WaitFor(uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->consumer_cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                               [&] { return state_->finished; });
  return state_->status.load(std::memory_order_acquire);
}

std::vector<std::vector<VertexId>> JobHandle::NextBatch(size_t max) {
  std::vector<std::vector<VertexId>> batch;
  if (max == 0) return batch;
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->consumer_cv.wait(lock, [&] {
    return !state_->buffer.empty() || state_->finished ||
           state_->consumer_closed;
  });
  while (!state_->buffer.empty() && batch.size() < max) {
    batch.push_back(std::move(state_->buffer.front()));
    state_->buffer.pop_front();
  }
  state_->delivered += batch.size();
  if (!batch.empty()) state_->producer_cv.notify_one();
  return batch;
}

std::vector<std::vector<VertexId>> JobHandle::TryNextBatch(size_t max) {
  std::vector<std::vector<VertexId>> batch;
  std::lock_guard<std::mutex> lock(state_->mutex);
  while (!state_->buffer.empty() && batch.size() < max) {
    batch.push_back(std::move(state_->buffer.front()));
    state_->buffer.pop_front();
  }
  state_->delivered += batch.size();
  if (!batch.empty()) state_->producer_cv.notify_one();
  return batch;
}

void JobHandle::CloseStream() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->consumer_closed = true;
  state_->buffer.clear();
  state_->producer_cv.notify_all();
  state_->consumer_cv.notify_all();
}

const MatchResult& JobHandle::Result() {
  Wait();
  return state_->result;
}

const obs::SearchProfile& JobHandle::Profile() {
  Wait();
  return state_->profile;
}

}  // namespace daf::service

#include "service/subscription.h"

#include <utility>

namespace daf::service {

namespace internal {

bool PushDeltaBatch(SubscriptionState& sub, DeltaBatch batch) {
  std::lock_guard<std::mutex> lock(sub.mutex);
  if (sub.pending.size() >= sub.max_pending) {
    // The consumer fell behind by a full queue. Partial delivery would be
    // worse than none (the fold would silently diverge), so drop the whole
    // backlog and leave one resync marker at the newest version.
    sub.dropped_batches += sub.pending.size() + 1;
    sub.pending.clear();
    DeltaBatch marker;
    marker.version = batch.version;
    marker.resync = true;
    sub.pending.push_back(std::move(marker));
    return false;
  }
  const bool resync = batch.resync;
  if (resync) ++sub.dropped_batches;
  sub.pending.push_back(std::move(batch));
  ++sub.delivered_batches;
  return !resync;
}

}  // namespace internal

void SubscriptionHandle::Unsubscribe() {
  state_->cancelled.store(true, std::memory_order_release);
}

std::optional<DeltaBatch> SubscriptionHandle::Poll() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (state_->pending.empty()) return std::nullopt;
  DeltaBatch batch = std::move(state_->pending.front());
  state_->pending.pop_front();
  return batch;
}

std::vector<DeltaBatch> SubscriptionHandle::Drain() {
  std::vector<DeltaBatch> out;
  std::lock_guard<std::mutex> lock(state_->mutex);
  out.reserve(state_->pending.size());
  while (!state_->pending.empty()) {
    out.push_back(std::move(state_->pending.front()));
    state_->pending.pop_front();
  }
  return out;
}

size_t SubscriptionHandle::PendingBatches() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->pending.size();
}

}  // namespace daf::service

#include "service/match_service.h"

#include <algorithm>
#include <utility>

#include "daf/cursor.h"
#include "daf/parallel.h"

namespace daf::service {

namespace {

ServiceOptions Normalize(ServiceOptions options) {
  options.num_workers = std::max(options.num_workers, 1u);
  options.queue_capacity = std::max<size_t>(options.queue_capacity, 1);
  return options;
}

}  // namespace

MatchService::MatchService(Graph data, ServiceOptions options)
    : data_(std::move(data)),
      options_(Normalize(options)),
      queue_(options_.queue_capacity),
      contexts_(options_.num_workers) {
  workers_.reserve(options_.num_workers);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MatchService::~MatchService() { Shutdown(); }

JobHandle MatchService::Submit(QueryJob job) {
  auto state = std::make_shared<internal::JobState>();
  state->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  state->priority = job.priority;
  state->query = std::move(job.query);
  state->options = std::move(job.options);
  state->deadline_ms =
      job.deadline_ms != 0 ? job.deadline_ms : options_.default_deadline_ms;
  state->stream = job.stream_embeddings;
  if (job.limit != 0) {
    state->options.limit = job.limit;
  } else if (state->options.limit == 0) {
    state->options.limit = options_.default_limit;
  }

  // The service owns the engine's side channels (results stream through
  // the handle, the profile is per job, cancellation goes through it too).
  const bool reserved_channel_set = static_cast<bool>(state->options.callback) ||
                                    static_cast<bool>(state->options.progress) ||
                                    state->options.profile != nullptr ||
                                    state->options.cancel != nullptr;
  state->options.callback = {};
  state->options.progress = {};
  state->options.profile = nullptr;
  state->options.cancel = nullptr;

  // Resolves a job at submission time (never admitted: no inflight /
  // latency accounting, just the outcome counter).
  auto resolve_now = [&](JobStatus status, uint64_t* counter) {
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->finished = true;
      state->status.store(status, std::memory_order_release);
    }
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++counters_.submitted;
    ++*counter;
    return JobHandle(state);
  };

  if (reserved_channel_set) {
    state->result.ok = false;
    state->result.error =
        "QueryJob::options must leave callback/progress/profile/cancel "
        "unset; those channels belong to the service";
    return resolve_now(JobStatus::kFailed, &counters_.failed);
  }
  if (shutdown_.load(std::memory_order_acquire)) {
    state->result.ok = false;
    state->result.error = "service is shut down";
    return resolve_now(JobStatus::kRejected, &counters_.rejected);
  }

  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++counters_.submitted;
    ++inflight_;
  }
  if (!queue_.TryPush(state)) {
    // Overflow (or a racing shutdown closed the queue): shed the load.
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->result.ok = false;
      state->result.error = "admission queue full";
      state->finished = true;
      state->status.store(JobStatus::kRejected, std::memory_order_release);
    }
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++counters_.rejected;
    --inflight_;
    idle_cv_.notify_all();
  }
  return JobHandle(state);
}

void MatchService::WorkerLoop() {
  while (internal::JobStatePtr job = queue_.Pop()) {
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++running_;
      running_jobs_.push_back(job);
      // A shutdown that raced our pop misses this job in its cancel sweep;
      // checking the flag under the same lock closes the window.
      if (shutdown_.load(std::memory_order_acquire)) job->cancel.Cancel();
    }
    ProcessJob(job);
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      --running_;
      auto it = std::find(running_jobs_.begin(), running_jobs_.end(), job);
      if (it != running_jobs_.end()) running_jobs_.erase(it);
      // Drain waits for running_ too, so a post-Drain Metrics() snapshot
      // never sees a worker still in its per-job bookkeeping.
      idle_cv_.notify_all();
    }
  }
}

void MatchService::ProcessJob(const internal::JobStatePtr& job) {
  job->wait_ms = job->since_submit.ElapsedMs();
  job->start_seq = next_start_seq_.fetch_add(1, std::memory_order_relaxed);

  if (job->cancel.cancelled()) {
    job->result.cancelled = true;
    FinishJob(job, JobStatus::kCancelled, /*ran=*/false);
    return;
  }

  MatchOptions opts = job->options;
  opts.cancel = &job->cancel;
  if (options_.collect_profiles) opts.profile = &job->profile;
  if (job->deadline_ms > 0) {
    // The end-to-end deadline already paid the queue wait; hand the engine
    // only what is left (the tighter of it and any explicit search budget).
    const double remaining =
        static_cast<double>(job->deadline_ms) - job->wait_ms;
    if (remaining < 1) {
      job->result.timed_out = true;
      FinishJob(job, JobStatus::kTimedOut, /*ran=*/false);
      return;
    }
    const uint64_t remaining_ms = static_cast<uint64_t>(remaining);
    opts.time_limit_ms = opts.time_limit_ms == 0
                             ? remaining_ms
                             : std::min(opts.time_limit_ms, remaining_ms);
  }

  job->status.store(JobStatus::kRunning, std::memory_order_release);

  Stopwatch run_timer;
  uint64_t streamed = 0;
  bool ran_parallel = false;
  MatchResult result;
  {
    ContextPool::Lease lease = contexts_.Acquire();
    if (!job->stream && options_.intra_query_threads > 1 &&
        job->priority == Priority::kInteractive) {
      // Latency-critical job: spend intra-query threads on it. Limits,
      // deadline, and cancellation keep exact single-thread semantics
      // through the shared counter and the StopCondition each worker polls.
      result = ParallelDafMatch(job->query, data_, opts,
                                options_.intra_query_threads, lease.get());
      ran_parallel = true;
    } else if (job->stream) {
      // The cursor runs the search on its producer thread inside the
      // pooled context; this worker pumps embeddings into the handle's
      // buffer under backpressure.
      EmbeddingCursor cursor(job->query, data_, opts, lease.get());
      while (auto embedding = cursor.Next()) {
        if (!DeliverEmbedding(job, std::move(*embedding))) {
          cursor.Close();
          break;
        }
        ++streamed;
      }
      result = cursor.Finish();
    } else {
      result = DafMatch(job->query, data_, opts, lease.get());
    }
  }
  job->run_ms = run_timer.ElapsedMs();
  job->result = std::move(result);

  const MatchResult& r = job->result;
  JobStatus status;
  if (!r.ok) {
    status = JobStatus::kFailed;
  } else if (r.cancelled ||
             (job->cancel.cancelled() && !r.Complete())) {
    // The second clause catches a cancel that stopped the run through the
    // streaming channel before the search loop polled the token.
    status = JobStatus::kCancelled;
  } else if (r.timed_out) {
    status = JobStatus::kTimedOut;
  } else {
    status = JobStatus::kDone;
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    embeddings_streamed_ += streamed;
    if (ran_parallel) ++counters_.parallel_jobs;
  }
  FinishJob(job, status, /*ran=*/true);
}

bool MatchService::DeliverEmbedding(const internal::JobStatePtr& job,
                                    std::vector<VertexId> embedding) {
  std::unique_lock<std::mutex> lock(job->mutex);
  job->producer_cv.wait(lock, [&] {
    return job->consumer_closed || job->cancel.cancelled() ||
           job->buffer.size() < internal::JobState::kBufferCapacity;
  });
  if (job->consumer_closed || job->cancel.cancelled()) return false;
  job->buffer.push_back(std::move(embedding));
  job->consumer_cv.notify_one();
  return true;
}

void MatchService::FinishJob(const internal::JobStatePtr& job,
                             JobStatus status, bool ran) {
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    job->finished = true;
    job->status.store(status, std::memory_order_release);
    job->consumer_cv.notify_all();
    job->producer_cv.notify_all();
  }
  const double total_ms = job->since_submit.ElapsedMs();
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  switch (status) {
    case JobStatus::kDone:
      ++counters_.completed;
      break;
    case JobStatus::kCancelled:
      ++counters_.cancelled;
      break;
    case JobStatus::kTimedOut:
      ++counters_.timed_out;
      break;
    case JobStatus::kFailed:
      ++counters_.failed;
      break;
    default:
      break;  // kQueued/kRunning/kRejected never reach FinishJob
  }
  wait_hist_.Record(job->wait_ms);
  if (ran) run_hist_.Record(job->run_ms);
  total_hist_.Record(total_ms);
  --inflight_;
  idle_cv_.notify_all();
}

void MatchService::Drain() {
  std::unique_lock<std::mutex> lock(metrics_mutex_);
  idle_cv_.wait(lock, [&] { return inflight_ == 0 && running_ == 0; });
}

void MatchService::Shutdown() {
  std::call_once(shutdown_once_, [&] {
    shutdown_.store(true, std::memory_order_release);
    queue_.Close();
    // Jobs still queued never run; resolve them as cancelled.
    for (internal::JobStatePtr& job : queue_.Flush()) {
      job->cancel.Cancel();
      job->result.cancelled = true;
      FinishJob(job, JobStatus::kCancelled, /*ran=*/false);
    }
    // Cancel-request everything currently on a worker, waking producers
    // blocked on stream backpressure.
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      for (const internal::JobStatePtr& job : running_jobs_) {
        job->cancel.Cancel();
        std::lock_guard<std::mutex> job_lock(job->mutex);
        job->producer_cv.notify_all();
        job->consumer_cv.notify_all();
      }
    }
    for (std::thread& worker : workers_) worker.join();
  });
}

obs::ServiceMetricsSnapshot MatchService::Metrics() const {
  obs::ServiceMetricsSnapshot m;
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  m.counters = counters_;
  m.queue_depth = queue_.depth();
  m.running = running_;
  m.workers = static_cast<uint32_t>(workers_.size());
  m.embeddings_streamed = embeddings_streamed_;
  m.wait = wait_hist_;
  m.run = run_hist_;
  m.total = total_hist_;
  return m;
}

}  // namespace daf::service

#include "service/match_service.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include <chrono>

#include "daf/cursor.h"
#include "daf/parallel.h"
#include "daf/prepared.h"
#include "graph/properties.h"
#include "util/fault_inject.h"
#include "util/timer.h"

namespace daf::service {

namespace {

ServiceOptions Normalize(ServiceOptions options) {
  options.num_workers = std::max(options.num_workers, 1u);
  options.queue_capacity = std::max<size_t>(options.queue_capacity, 1);
  options.subscription_queue_batches =
      std::max<size_t>(options.subscription_queue_batches, 1);
  return options;
}

dyn::DeltaGraph::Options DeltaOptions(const ServiceOptions& options) {
  dyn::DeltaGraph::Options d;
  d.compaction_ratio = options.delta_compaction_ratio;
  d.compaction_min_edges = options.delta_compaction_min_edges;
  return d;
}

}  // namespace

MatchService::MatchService(Graph data, ServiceOptions options)
    : options_(Normalize(options)),
      store_(options_.data_store),
      dgraph_(InitGraph(std::move(data))),
      queue_(options_.queue_capacity),
      contexts_(options_.num_workers, options_.context_retained_bytes),
      global_budget_(options_.service_memory_limit_bytes) {
  if (options_.enable_query_cache) {
    QueryCacheOptions cache_options;
    cache_options.shards = options_.cache_shards;
    cache_options.max_resident_bytes = options_.cache_max_resident_bytes;
    cache_options.canonical_max_leaves = options_.cache_canonical_max_leaves;
    cache_options.budget =
        options_.service_memory_limit_bytes != 0 ? &global_budget_ : nullptr;
    cache_ = std::make_unique<QueryCache>(cache_options);
  }
  workers_.reserve(options_.num_workers);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (options_.watchdog_interval_ms > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

MatchService::~MatchService() { Shutdown(); }

dyn::DeltaGraph MatchService::InitGraph(Graph data) {
  if (store_ != nullptr && store_->has_state()) {
    // Recovery already replayed the WAL onto the newest valid snapshot;
    // the constructor's seed graph is superseded by the durable truth.
    return store_->TakeRecoveredGraph();
  }
  if (store_ != nullptr) {
    std::string error;
    if (!store_->InitializeFresh(data, /*version=*/0, &error)) {
      // A service that cannot write its seed snapshot would reject every
      // update (append-before-apply); degrade to memory-only instead and
      // say so — the operator chose durability and is not getting it.
      std::fprintf(stderr, "daf: persistence disabled: %s\n", error.c_str());
      store_.reset();
    }
  }
  return dyn::DeltaGraph(std::move(data), DeltaOptions(options_));
}

JobHandle MatchService::Submit(QueryJob job) {
  auto state = std::make_shared<internal::JobState>();
  state->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  state->priority = job.priority;
  state->query = std::move(job.query);
  state->options = std::move(job.options);
  state->deadline_ms =
      job.deadline_ms != 0 ? job.deadline_ms : options_.default_deadline_ms;
  state->stream = job.stream_embeddings;
  state->memory_limit = job.max_memory_bytes != 0
                            ? job.max_memory_bytes
                            : options_.job_memory_limit_bytes;
  state->bypass_cache = job.bypass_cache;
  if (job.limit != 0) {
    state->options.limit = job.limit;
  } else if (state->options.limit == 0) {
    state->options.limit = options_.default_limit;
  }

  // The service owns the engine's side channels (results stream through
  // the handle, the profile is per job, cancellation goes through it too).
  const bool reserved_channel_set = static_cast<bool>(state->options.callback) ||
                                    static_cast<bool>(state->options.progress) ||
                                    state->options.profile != nullptr ||
                                    state->options.cancel != nullptr;
  state->options.callback = {};
  state->options.progress = {};
  state->options.profile = nullptr;
  state->options.cancel = nullptr;

  // Resolves a job at submission time (never admitted: no inflight /
  // latency accounting, just the outcome counter).
  auto resolve_now = [&](JobStatus status, uint64_t* counter) {
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->finished = true;
      state->status.store(status, std::memory_order_release);
    }
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++counters_.submitted;
    ++*counter;
    return JobHandle(state);
  };

  if (reserved_channel_set) {
    state->result.ok = false;
    state->result.error =
        "QueryJob::options must leave callback/progress/profile/cancel "
        "unset; those channels belong to the service";
    return resolve_now(JobStatus::kFailed, &counters_.failed);
  }
  if (shutdown_.load(std::memory_order_acquire)) {
    state->result.ok = false;
    state->result.error = "service is shut down";
    return resolve_now(JobStatus::kRejected, &counters_.rejected);
  }
  if (draining_.load(std::memory_order_acquire)) {
    state->result.ok = false;
    state->result.error = "service is draining";
    return resolve_now(JobStatus::kRejected, &counters_.rejected);
  }

  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++counters_.submitted;
    ++inflight_;
  }
  if (FAULT_POINT(admission_push) || !queue_.TryPush(state)) {
    // Overflow, a racing shutdown, or an injected admission fault: shed the
    // load. The fault check runs first so a fired fault never half-admits.
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->result.ok = false;
      state->result.error = "admission queue full";
      state->finished = true;
      state->status.store(JobStatus::kRejected, std::memory_order_release);
    }
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++counters_.rejected;
    --inflight_;
    idle_cv_.notify_all();
  }
  return JobHandle(state);
}

void MatchService::WorkerLoop() {
  while (internal::JobStatePtr job = queue_.Pop()) {
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++running_;
      running_jobs_.push_back(job);
      // A shutdown that raced our pop misses this job in its cancel sweep;
      // checking the flag under the same lock closes the window.
      if (shutdown_.load(std::memory_order_acquire)) job->cancel.Cancel();
    }
    ProcessJob(job);
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      --running_;
      auto it = std::find(running_jobs_.begin(), running_jobs_.end(), job);
      if (it != running_jobs_.end()) running_jobs_.erase(it);
      // Drain waits for running_ too, so a post-Drain Metrics() snapshot
      // never sees a worker still in its per-job bookkeeping.
      idle_cv_.notify_all();
    }
  }
}

void MatchService::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(metrics_mutex_);
  while (!shutdown_.load(std::memory_order_acquire)) {
    watchdog_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.watchdog_interval_ms));
    if (shutdown_.load(std::memory_order_acquire)) break;
    for (const internal::JobStatePtr& job : running_jobs_) {
      if (job->deadline_ms == 0) continue;
      const double over =
          job->since_submit.ElapsedMs() -
          static_cast<double>(job->deadline_ms + options_.watchdog_grace_ms);
      if (over <= 0) continue;
      // The job blew past deadline + grace without honoring its stop poll
      // (a stuck engine stage, a producer wedged on backpressure, ...).
      // Force-cancel it; the exchange claims the single fire per job.
      if (job->watchdog_fired.exchange(true)) continue;
      job->cancel.Cancel();
      {
        // metrics_mutex_ -> job->mutex is the established lock order
        // (Shutdown's cancel sweep does the same).
        std::lock_guard<std::mutex> job_lock(job->mutex);
        job->producer_cv.notify_all();
        job->consumer_cv.notify_all();
      }
      ++watchdog_fires_;
    }
  }
}

void MatchService::ProcessJob(const internal::JobStatePtr& job) {
  job->wait_ms = job->since_submit.ElapsedMs();
  job->start_seq = next_start_seq_.fetch_add(1, std::memory_order_relaxed);

  if (job->cancel.cancelled()) {
    job->result.cancelled = true;
    FinishJob(job, JobStatus::kCancelled, /*ran=*/false);
    return;
  }

  if (FAULT_POINT(worker_dispatch)) {
    // Simulated dispatch failure (a worker that could not set up the run).
    job->result.ok = false;
    job->result.error = "injected worker dispatch fault";
    FinishJob(job, JobStatus::kFailed, /*ran=*/false);
    return;
  }

  MatchOptions opts = job->options;
  opts.cancel = &job->cancel;
  if (options_.collect_profiles) opts.profile = &job->profile;
  if (job->deadline_ms > 0) {
    // The end-to-end deadline already paid the queue wait; hand the engine
    // only what is left (the tighter of it and any explicit search budget).
    const double remaining =
        static_cast<double>(job->deadline_ms) - job->wait_ms;
    if (remaining < 1) {
      job->result.timed_out = true;
      FinishJob(job, JobStatus::kTimedOut, /*ran=*/false);
      return;
    }
    const uint64_t remaining_ms = static_cast<uint64_t>(remaining);
    opts.time_limit_ms = opts.time_limit_ms == 0
                             ? remaining_ms
                             : std::min(opts.time_limit_ms, remaining_ms);
  }

  job->status.store(JobStatus::kRunning, std::memory_order_release);

  // Per-job ledger under the service-global one. Stack-local is safe: the
  // engine detaches the arena before returning, and the streaming cursor's
  // producer thread is joined by Finish() inside the block below.
  MemoryBudget budget(job->memory_limit, &global_budget_);
  opts.memory_budget = &budget;

  // The job runs against the snapshot of the graph version current at
  // dispatch: updates applied mid-run do not tear the search (the CSR is
  // immutable), and the version keys the cache lookup so a blob built for
  // an older graph can never serve this job.
  const auto [snapshot, graph_version] = SnapshotVersion();
  const Graph& data = *snapshot;

  Stopwatch run_timer;
  uint64_t streamed = 0;
  bool ran_parallel = false;
  MatchResult result;
  {
    ContextPool::Lease lease = contexts_.Acquire();
    const bool parallel = !job->stream && options_.intra_query_threads > 1 &&
                          job->priority == Priority::kInteractive;

    // Cross-query cache: resolve the canonical pattern first. A hit (or a
    // miss, which built and published the blob) runs the prepared engine
    // against the canonical query and remaps streamed embeddings back; a
    // null lease (bypass, uncacheable query, interrupted or coalesced-
    // failed build) falls through to the ordinary cold path, whose own
    // StopCondition re-reports any cancel/deadline/budget that interrupted
    // the build.
    QueryCache::Lease cached;
    if (cache_ != nullptr && !job->bypass_cache) {
      cached = cache_->Acquire(job->query, data, opts, graph_version);
      job->cache_outcome = cached.outcome;
    }

    if (cached.prepared != nullptr) {
      if (parallel) {
        result = ParallelDafMatchPrepared(*cached.prepared, data, opts,
                                          options_.intra_query_threads,
                                          lease.get());
        ran_parallel = true;
      } else if (job->stream) {
        // The producer enumerates the *canonical* query; remap each
        // embedding through the stored permutation before delivery so the
        // consumer sees the submitted vertex numbering.
        EmbeddingCursor cursor(cached.prepared, data, opts, lease.get());
        const std::vector<VertexId>& to_canonical = cached.form.to_canonical;
        while (auto embedding = cursor.Next()) {
          std::vector<VertexId> remapped(embedding->size());
          for (size_t u = 0; u < remapped.size(); ++u) {
            remapped[u] = (*embedding)[to_canonical[u]];
          }
          if (!DeliverEmbedding(job, std::move(remapped))) {
            cursor.Close();
            break;
          }
          ++streamed;
        }
        result = cursor.Finish();
      } else {
        result = DafMatchPrepared(*cached.prepared, data, opts, lease.get());
      }
    } else if (parallel) {
      // Latency-critical job: spend intra-query threads on it. Limits,
      // deadline, and cancellation keep exact single-thread semantics
      // through the shared counter and the StopCondition each worker polls.
      result = ParallelDafMatch(job->query, data, opts,
                                options_.intra_query_threads, lease.get());
      ran_parallel = true;
    } else if (job->stream) {
      // The cursor runs the search on its producer thread inside the
      // pooled context; this worker pumps embeddings into the handle's
      // buffer under backpressure.
      EmbeddingCursor cursor(job->query, data, opts, lease.get());
      while (auto embedding = cursor.Next()) {
        if (!DeliverEmbedding(job, std::move(*embedding))) {
          cursor.Close();
          break;
        }
        ++streamed;
      }
      result = cursor.Finish();
    } else {
      result = DafMatch(job->query, data, opts, lease.get());
    }
  }
  job->run_ms = run_timer.ElapsedMs();
  job->result = std::move(result);
  job->peak_bytes = budget.peak_bytes();
  job->budget_rejections = budget.rejections();

  const MatchResult& r = job->result;
  JobStatus status;
  if (!r.ok) {
    status = JobStatus::kFailed;
  } else if (r.cancelled ||
             (job->cancel.cancelled() && !r.Complete())) {
    // The second clause catches a cancel that stopped the run through the
    // streaming channel before the search loop polled the token.
    status = JobStatus::kCancelled;
  } else if (r.resource_exhausted) {
    status = JobStatus::kResourceExhausted;
  } else if (r.timed_out) {
    status = JobStatus::kTimedOut;
  } else {
    status = JobStatus::kDone;
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    embeddings_streamed_ += streamed;
    if (ran_parallel) ++counters_.parallel_jobs;
    budget_rejections_ += budget.rejections();
    peak_job_bytes_ = std::max(peak_job_bytes_, budget.peak_bytes());
  }
  FinishJob(job, status, /*ran=*/true);
}

bool MatchService::DeliverEmbedding(const internal::JobStatePtr& job,
                                    std::vector<VertexId> embedding) {
  std::unique_lock<std::mutex> lock(job->mutex);
  job->producer_cv.wait(lock, [&] {
    return job->consumer_closed || job->cancel.cancelled() ||
           job->buffer.size() < internal::JobState::kBufferCapacity;
  });
  if (job->consumer_closed || job->cancel.cancelled()) return false;
  job->buffer.push_back(std::move(embedding));
  job->consumer_cv.notify_one();
  return true;
}

void MatchService::FinishJob(const internal::JobStatePtr& job,
                             JobStatus status, bool ran) {
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    job->finished = true;
    job->status.store(status, std::memory_order_release);
    job->consumer_cv.notify_all();
    job->producer_cv.notify_all();
  }
  const double total_ms = job->since_submit.ElapsedMs();
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  switch (status) {
    case JobStatus::kDone:
      ++counters_.completed;
      break;
    case JobStatus::kCancelled:
      ++counters_.cancelled;
      break;
    case JobStatus::kTimedOut:
      ++counters_.timed_out;
      break;
    case JobStatus::kFailed:
      ++counters_.failed;
      break;
    case JobStatus::kResourceExhausted:
      ++counters_.resource_exhausted;
      break;
    default:
      break;  // kQueued/kRunning/kRejected never reach FinishJob
  }
  wait_hist_.Record(job->wait_ms);
  if (ran) run_hist_.Record(job->run_ms);
  total_hist_.Record(total_ms);
  --inflight_;
  idle_cv_.notify_all();
}

void MatchService::Drain() {
  std::unique_lock<std::mutex> lock(metrics_mutex_);
  idle_cv_.wait(lock, [&] { return inflight_ == 0 && running_ == 0; });
}

void MatchService::Shutdown() {
  std::call_once(shutdown_once_, [&] {
    shutdown_.store(true, std::memory_order_release);
    queue_.Close();
    // Jobs still queued never run; resolve them as cancelled.
    for (internal::JobStatePtr& job : queue_.Flush()) {
      job->cancel.Cancel();
      job->result.cancelled = true;
      FinishJob(job, JobStatus::kCancelled, /*ran=*/false);
    }
    // Cancel-request everything currently on a worker, waking producers
    // blocked on stream backpressure.
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      for (const internal::JobStatePtr& job : running_jobs_) {
        job->cancel.Cancel();
        std::lock_guard<std::mutex> job_lock(job->mutex);
        job->producer_cv.notify_all();
        job->consumer_cv.notify_all();
      }
    }
    for (std::thread& worker : workers_) worker.join();
    if (watchdog_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        watchdog_cv_.notify_all();
      }
      watchdog_.join();
    }
  });
}

void MatchService::GracefulShutdown(uint64_t grace_ms) {
  draining_.store(true, std::memory_order_release);
  {
    // Admission is closed, so inflight_ can only fall; wait for the
    // admitted jobs to finish, bounded by the grace deadline.
    std::unique_lock<std::mutex> lock(metrics_mutex_);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(grace_ms);
    idle_cv_.wait_until(lock, deadline,
                        [&] { return inflight_ == 0 && running_ == 0; });
  }
  {
    // Final resync marker: delivery stops at this version, and a consumer
    // reconnecting after the restart must re-run its standing query (its
    // subscription object does not survive the process).
    std::lock_guard<std::mutex> ulock(update_mutex_);
    uint64_t version;
    {
      std::lock_guard<std::mutex> glock(graph_mutex_);
      version = dgraph_.version();
    }
    for (const internal::SubscriptionStatePtr& sub : subscriptions_) {
      if (sub->cancelled.load(std::memory_order_acquire)) continue;
      DeltaBatch marker;
      marker.version = version;
      marker.resync = true;
      internal::PushDeltaBatch(*sub, std::move(marker));
    }
  }
  if (store_ != nullptr) {
    // Whatever the fsync policy deferred is made durable now: a graceful
    // exit must never lose batches the service reported committed.
    std::string sync_error;
    if (!store_->Sync(&sync_error)) {
      std::fprintf(stderr, "daf: wal sync on shutdown failed: %s\n",
                   sync_error.c_str());
    }
  }
  Shutdown();
}

std::pair<std::shared_ptr<const Graph>, uint64_t>
MatchService::SnapshotVersion() const {
  std::lock_guard<std::mutex> lock(graph_mutex_);
  return {dgraph_.Materialize(), dgraph_.version()};
}

std::shared_ptr<const Graph> MatchService::Snapshot() const {
  return SnapshotVersion().first;
}

uint64_t MatchService::GraphVersion() const {
  std::lock_guard<std::mutex> lock(graph_mutex_);
  return dgraph_.version();
}

size_t MatchService::ActiveSubscriptions() const {
  std::lock_guard<std::mutex> lock(update_mutex_);
  size_t active = 0;
  for (const auto& sub : subscriptions_) {
    if (!sub->cancelled.load(std::memory_order_acquire)) ++active;
  }
  return active;
}

SubscriptionHandle MatchService::Subscribe(QueryJob job) {
  auto state = std::make_shared<internal::SubscriptionState>();
  state->id = next_subscription_id_.fetch_add(1, std::memory_order_relaxed);
  state->query = std::move(job.query);
  state->options = std::move(job.options);
  state->max_pending = options_.subscription_queue_batches;

  auto reject = [&](std::string why) {
    state->ok = false;
    state->error = std::move(why);
    return SubscriptionHandle(state);
  };
  if (static_cast<bool>(state->options.callback) ||
      static_cast<bool>(state->options.progress) ||
      state->options.profile != nullptr || state->options.cancel != nullptr) {
    return reject(
        "QueryJob::options must leave callback/progress/profile/cancel "
        "unset; deltas are delivered through the SubscriptionHandle");
  }
  if (state->query.NumVertices() == 0) {
    return reject("standing query must be non-empty");
  }
  if (!IsConnected(state->query)) {
    // Delta enumeration grows outward from one pinned edge; a disconnected
    // pattern would never be covered by one seed.
    return reject("standing query must be connected");
  }
  if (shutdown_.load(std::memory_order_acquire)) {
    return reject("service is shut down");
  }

  dyn::DynamicCandidateSpace::Options cs_options;
  cs_options.refinement_steps = state->options.refinement_steps;
  cs_options.use_nlf_filter = state->options.use_nlf_filter;
  cs_options.use_mnd_filter = state->options.use_mnd_filter;
  cs_options.injective = state->options.injective;
  cs_options.rebuild_dirty_fraction = options_.dyn_rebuild_dirty_fraction;
  cs_options.rebuild_min_dirty_pairs = options_.dyn_rebuild_min_dirty_pairs;

  std::lock_guard<std::mutex> ulock(update_mutex_);
  {
    // The initial CS build materializes the current version.
    std::lock_guard<std::mutex> glock(graph_mutex_);
    state->subscribed_version = dgraph_.version();
    state->cs = std::make_unique<dyn::DynamicCandidateSpace>(
        state->query, dgraph_, cs_options);
  }
  state->enumerator =
      std::make_unique<dyn::DeltaEnumerator>(state->query, *state->cs);
  subscriptions_.push_back(state);
  return SubscriptionHandle(state);
}

UpdateOutcome MatchService::ApplyUpdates(const dyn::UpdateBatch& batch) {
  UpdateOutcome out;
  std::lock_guard<std::mutex> ulock(update_mutex_);
  if (shutdown_.load(std::memory_order_acquire)) {
    out.ok = false;
    out.error = "service is shut down";
    return out;
  }
  if (draining_.load(std::memory_order_acquire)) {
    // GracefulShutdown has synced (or is about to sync) the WAL; a batch
    // admitted now could commit in memory and miss durability.
    out.ok = false;
    out.error = "service is draining";
    return out;
  }

  // Sweep subscriptions dropped since the last update.
  subscriptions_.erase(
      std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                     [](const internal::SubscriptionStatePtr& s) {
                       return s->cancelled.load(std::memory_order_acquire);
                     }),
      subscriptions_.end());

  // Pure pre-pass: the net change set, and per subscription the embeddings
  // it destroys — both read the pre-batch graph, so they must run before
  // ApplyBatch. Nothing is delivered yet: if the apply itself fails (an
  // injected delta_apply fault), the negatives are simply dropped and no
  // subscriber observes a version that never existed.
  dyn::NormalizedBatch net;
  std::string error;
  if (!dgraph_.Normalize(batch, &net, &error)) {
    out.ok = false;
    out.error = std::move(error);
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++dyn_batches_rejected_;
    return out;
  }
  std::vector<dyn::DeltaEnumResult> destroyed(subscriptions_.size());
  for (size_t i = 0; i < subscriptions_.size(); ++i) {
    destroyed[i] = subscriptions_[i]->enumerator->Destroyed(dgraph_, net, {});
  }

  // Append-before-apply (docs/PERSISTENCE.md): the normalized batch is
  // durable before any in-memory state changes. An append failure rejects
  // the batch — an unlogged batch must never be applied; the converse (an
  // apply failure after the append) rolls the log back below.
  const bool logged = store_ != nullptr;
  if (logged) {
    uint64_t next_version;
    {
      std::lock_guard<std::mutex> glock(graph_mutex_);
      next_version = dgraph_.version() + 1;
    }
    std::string persist_error;
    if (!store_->AppendBatch(net, batch.add_vertices, next_version,
                             &persist_error)) {
      out.ok = false;
      out.error = std::move(persist_error);
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++dyn_batches_rejected_;
      return out;
    }
  }

  uint64_t cs_incremental = 0, cs_rebuilds = 0;
  uint64_t dirty_pairs = 0, peak_dirty = 0;
  std::vector<double> notify_ms;
  std::shared_ptr<const Graph> checkpoint_graph;
  uint64_t checkpoint_version = 0;
  {
    std::lock_guard<std::mutex> glock(graph_mutex_);
    dyn::ApplyResult r = dgraph_.ApplyBatch(batch);
    if (!r.ok) {
      if (logged) {
        // The WAL holds a batch the graph refused; truncate it back out.
        // If even that fails the store latches fail-stop and every later
        // append is refused (the log must stay a prefix of the truth).
        std::string rollback_error;
        store_->RollbackLastAppend(&rollback_error);
      }
      out.ok = false;
      out.error = std::move(r.error);
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++dyn_batches_rejected_;
      return out;
    }
    if (r.compacted && logged) {
      // Compaction folded the overlay into a fresh base — the natural
      // moment to roll the WAL into a snapshot. Materialize under the
      // graph lock (compaction just did, so this is a cache hit); the
      // checkpoint write itself happens after the lock is dropped.
      checkpoint_graph = dgraph_.Materialize();
      checkpoint_version = r.version;
    }
    out.version = r.version;
    out.inserted_edges = r.inserted_edges;
    out.removed_edges = r.removed_edges;
    out.added_vertices = r.added_vertices;
    out.removed_vertices = r.removed_vertices;
    out.ignored_ops = r.ignored_ops;

    // Post-pass per subscription: maintain the candidates, enumerate the
    // created embeddings, deliver. Still under graph_mutex_ because the
    // rebuild fallback (and compaction inside ApplyBatch) materializes.
    notify_ms.reserve(subscriptions_.size());
    for (size_t i = 0; i < subscriptions_.size(); ++i) {
      internal::SubscriptionState& sub = *subscriptions_[i];
      Stopwatch notify_timer;
      const auto stats = sub.cs->Apply(dgraph_, net);
      if (stats.rebuilt) {
        ++cs_rebuilds;
      } else {
        ++cs_incremental;
      }
      dirty_pairs += stats.dirty_pairs;
      peak_dirty = std::max(peak_dirty, stats.dirty_pairs);

      dyn::DeltaEnumResult created =
          sub.enumerator->Created(dgraph_, net, {});

      DeltaBatch delta;
      delta.version = r.version;
      if (FAULT_POINT(subscriber_notify)) {
        // Injected delivery failure: the deltas are lost, not half-sent.
        // Degrade honestly to a resync marker so the consumer knows its
        // fold diverged at this version.
        delta.resync = true;
      } else {
        delta.deltas.reserve(destroyed[i].embeddings.size() +
                             created.embeddings.size());
        for (auto& m : destroyed[i].embeddings) {
          delta.deltas.push_back({/*created=*/false, std::move(m)});
        }
        for (auto& m : created.embeddings) {
          delta.deltas.push_back({/*created=*/true, std::move(m)});
        }
        out.embeddings_created += created.embeddings.size();
        out.embeddings_destroyed += destroyed[i].embeddings.size();
      }
      // PushDeltaBatch reports false both for a delivery degraded to a
      // resync marker here and for a queue overflow that dropped backlog.
      if (!internal::PushDeltaBatch(sub, std::move(delta))) ++out.resyncs;
      ++out.subscriptions_notified;
      notify_ms.push_back(notify_timer.ElapsedMs());
    }
  }

  if (checkpoint_graph != nullptr) {
    // Still under update_mutex_ (checkpoints serialize with appends) but
    // outside graph_mutex_, so snapshots and match jobs proceed during the
    // write. Failure is non-fatal: the WAL still holds everything since
    // the last good snapshot, and the store counted the error.
    std::string checkpoint_error;
    store_->Checkpoint(*checkpoint_graph, checkpoint_version,
                       &checkpoint_error);
  }

  std::lock_guard<std::mutex> lock(metrics_mutex_);
  ++dyn_batches_applied_;
  dyn_cs_incremental_ += cs_incremental;
  dyn_cs_rebuilds_ += cs_rebuilds;
  dyn_dirty_pairs_ += dirty_pairs;
  dyn_peak_dirty_pairs_ = std::max(dyn_peak_dirty_pairs_, peak_dirty);
  dyn_embeddings_created_ += out.embeddings_created;
  dyn_embeddings_destroyed_ += out.embeddings_destroyed;
  dyn_resyncs_ += out.resyncs;
  for (double ms : notify_ms) notify_hist_.Record(ms);
  return out;
}

bool MatchService::Checkpoint(std::string* error) {
  if (store_ == nullptr) {
    if (error != nullptr) *error = "persistence not configured";
    return false;
  }
  std::lock_guard<std::mutex> ulock(update_mutex_);
  std::shared_ptr<const Graph> g;
  uint64_t version;
  {
    std::lock_guard<std::mutex> glock(graph_mutex_);
    g = dgraph_.Materialize();
    version = dgraph_.version();
  }
  return store_->Checkpoint(*g, version, error);
}

obs::ServiceMetricsSnapshot MatchService::Metrics() const {
  obs::ServiceMetricsSnapshot m;
  // Locks ordered as everywhere else: update/graph first, metrics last
  // (the store's internal mutex is a leaf — Stats never blocks a writer
  // for long).
  m.dyn_active_subscriptions = ActiveSubscriptions();
  m.graph_version = GraphVersion();
  if (store_ != nullptr) {
    const persist::PersistStats ps = store_->Stats();
    m.persist_enabled = true;
    m.persist_wal_bytes = ps.wal_bytes;
    m.persist_wal_appended_batches = ps.wal_appended_batches;
    m.persist_wal_fsyncs = ps.wal_fsyncs;
    m.persist_snapshots_written = ps.snapshots_written;
    m.persist_errors = ps.persist_errors;
    m.persist_failed = ps.failed;
    m.persist_last_snapshot_ms = ps.last_snapshot_ms;
    m.persist_recovered = ps.recovery.recovered;
    m.persist_recovery_snapshot_version = ps.recovery.snapshot_version;
    m.persist_recovery_wal_replayed = ps.recovery.wal_records_replayed;
    m.persist_recovery_wal_truncated_bytes = ps.recovery.wal_truncated_bytes;
    m.persist_recovery_ms = ps.recovery.recovery_ms;
  }
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  m.dyn_batches_applied = dyn_batches_applied_;
  m.dyn_batches_rejected = dyn_batches_rejected_;
  m.dyn_cs_incremental = dyn_cs_incremental_;
  m.dyn_cs_rebuilds = dyn_cs_rebuilds_;
  m.dyn_dirty_pairs = dyn_dirty_pairs_;
  m.dyn_peak_dirty_pairs = dyn_peak_dirty_pairs_;
  m.dyn_embeddings_created = dyn_embeddings_created_;
  m.dyn_embeddings_destroyed = dyn_embeddings_destroyed_;
  m.dyn_resyncs = dyn_resyncs_;
  m.notify = notify_hist_;
  m.counters = counters_;
  m.queue_depth = queue_.depth();
  m.running = running_;
  m.workers = static_cast<uint32_t>(workers_.size());
  m.embeddings_streamed = embeddings_streamed_;
  m.watchdog_fires = watchdog_fires_;
  m.budget_rejections = budget_rejections_;
  m.peak_job_bytes = peak_job_bytes_;
  m.global_memory_used = global_budget_.used();
  m.global_memory_limit = global_budget_.limit();
  m.pool_peak_in_use = contexts_.peak_in_use();
  m.pool_capacity = contexts_.capacity();
  m.pool_sockets = contexts_.num_sockets();
  m.pool_local_leases = contexts_.local_leases();
  m.pool_remote_leases = contexts_.remote_leases();
  m.wait = wait_hist_;
  m.run = run_hist_;
  m.total = total_hist_;
  if (cache_ != nullptr) {
    const QueryCacheStats cs = cache_->Stats();
    m.cache_enabled = true;
    m.cache_lookups = cs.lookups;
    m.cache_hits = cs.hits;
    m.cache_misses = cs.misses;
    m.cache_coalesced = cs.coalesced;
    m.cache_evictions = cs.evictions;
    m.cache_insert_failures = cs.insert_failures;
    m.cache_uncacheable = cs.uncacheable;
    m.cache_resident_bytes = cs.resident_bytes;
    m.cache_entries = cs.entries;
  }
  return m;
}

}  // namespace daf::service

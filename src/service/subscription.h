#ifndef DAF_SERVICE_SUBSCRIPTION_H_
#define DAF_SERVICE_SUBSCRIPTION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "daf/dynamic_cs.h"
#include "daf/engine.h"
#include "dyn/delta_enumerate.h"
#include "dyn/update_batch.h"
#include "graph/graph.h"

namespace daf::service {

/// One embedding entering or leaving the result set of a standing query.
struct EmbeddingDelta {
  bool created = false;  // false = destroyed
  std::vector<VertexId> embedding;  // embedding[u] = data vertex for query u
};

/// The deltas one applied update batch produced for one subscription,
/// stamped with the graph version the batch advanced to. A consumer that
/// ran the standing query once at the subscription version and then folds
/// every DeltaBatch in version order holds the exact current result set.
///
/// `resync` set means the deltas for this version step were LOST — the
/// subscription's bounded queue overflowed, or an injected subscriber_notify
/// fault dropped the delivery. The queue was cleared; `deltas` is empty and
/// the consumer must re-run the standing query from scratch at `version`
/// before trusting later batches.
struct DeltaBatch {
  uint64_t version = 0;
  bool resync = false;
  std::vector<EmbeddingDelta> deltas;
};

/// Outcome of MatchService::ApplyUpdates: the DeltaGraph's ApplyResult
/// counts plus the standing-query fan-out totals.
struct UpdateOutcome {
  bool ok = true;  // false => `error`; the graph and every CS are unchanged
  std::string error;
  uint64_t version = 0;  // graph version after the batch
  uint64_t inserted_edges = 0;
  uint64_t removed_edges = 0;
  uint64_t added_vertices = 0;
  uint64_t removed_vertices = 0;
  uint64_t ignored_ops = 0;
  uint64_t embeddings_created = 0;    // across all subscriptions
  uint64_t embeddings_destroyed = 0;  // across all subscriptions
  uint64_t subscriptions_notified = 0;
  uint64_t resyncs = 0;  // notifications degraded to a resync marker
};

namespace internal {

/// Shared state of one standing query, owned jointly by the MatchService
/// (which feeds it from ApplyUpdates) and every SubscriptionHandle copy.
/// The maintenance members (cs, enumerator) are touched only by the
/// service's update path, which is serialized by its update mutex; the
/// delivery queue has its own lock so consumers never contend with
/// matching work.
struct SubscriptionState {
  uint64_t id = 0;
  bool ok = true;       // false => rejected at Subscribe; `error` says why
  std::string error;
  Graph query;
  MatchOptions options;  // injective etc.; search-side knobs are ignored
  uint64_t subscribed_version = 0;

  // Maintained across batches by the update path (update-mutex serialized).
  // Declared in this order: the enumerator holds references to `query` and
  // `*cs` and must die first.
  std::unique_ptr<dyn::DynamicCandidateSpace> cs;
  std::unique_ptr<dyn::DeltaEnumerator> enumerator;

  std::atomic<bool> cancelled{false};

  // Delivery queue (bounded; overflow clears it and marks resync).
  std::mutex mutex;
  std::deque<DeltaBatch> pending;
  size_t max_pending = 64;
  uint64_t delivered_batches = 0;
  uint64_t dropped_batches = 0;  // batches lost to overflow/fault resyncs
};

using SubscriptionStatePtr = std::shared_ptr<SubscriptionState>;

/// Enqueues `batch` onto the subscription, enforcing the bounded-queue
/// overflow semantics: when the queue is full the whole backlog is dropped
/// and replaced by a single resync marker at the batch's version (the
/// consumer fell too far behind for the deltas to be useful). Returns false
/// when the push degraded to a resync.
bool PushDeltaBatch(SubscriptionState& sub, DeltaBatch batch);

}  // namespace internal

/// The consumer's view of one standing query. Cheap to copy (all copies
/// share the subscription state) and safe to keep after the MatchService is
/// gone — a dead service simply never enqueues again.
///
/// Delivery model: MatchService::ApplyUpdates is synchronous, so by the
/// time it returns, every active subscription's queue holds the batch's
/// DeltaBatch (or a resync marker). Consumers poll; there is no callback
/// thread to misbehave on.
///
/// Thread safety: all methods may be called from any thread; Poll/Drain are
/// naturally single-consumer (concurrent pollers see disjoint batches).
class SubscriptionHandle {
 public:
  /// An empty handle (valid() false); Subscribe never returns one.
  SubscriptionHandle() = default;

  bool valid() const { return state_ != nullptr; }
  uint64_t id() const { return state_->id; }

  /// False when Subscribe rejected the query; `error()` says why. A
  /// rejected subscription never receives batches.
  bool ok() const { return state_->ok; }
  const std::string& error() const { return state_->error; }

  /// Graph version the subscription was registered at. Run the standing
  /// query once against the service snapshot at this version for the
  /// initial result set; every later batch is a delta on top of it.
  uint64_t subscribed_version() const { return state_->subscribed_version; }

  /// True until Unsubscribe (service shutdown does not flip it, it only
  /// stops producing batches).
  bool active() const {
    return state_->ok && !state_->cancelled.load(std::memory_order_acquire);
  }

  /// Deregisters the standing query: no further batches are enqueued, and
  /// the service drops its reference on the next update. Already-queued
  /// batches stay pollable. Idempotent.
  void Unsubscribe();

  /// Pops the oldest pending DeltaBatch (nullopt when none). Non-blocking.
  std::optional<DeltaBatch> Poll();

  /// Pops everything pending, oldest first. Non-blocking.
  std::vector<DeltaBatch> Drain();

  /// Batches currently queued.
  size_t PendingBatches() const;

 private:
  friend class MatchService;
  explicit SubscriptionHandle(internal::SubscriptionStatePtr state)
      : state_(std::move(state)) {}

  internal::SubscriptionStatePtr state_;
};

}  // namespace daf::service

#endif  // DAF_SERVICE_SUBSCRIPTION_H_

#ifndef DAF_SERVICE_MATCH_SERVICE_H_
#define DAF_SERVICE_MATCH_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dyn/delta_graph.h"
#include "graph/graph.h"
#include "obs/service_metrics.h"
#include "persist/store.h"
#include "service/admission_queue.h"
#include "util/memory_budget.h"
#include "service/context_pool.h"
#include "service/job.h"
#include "service/job_handle.h"
#include "service/query_cache.h"
#include "service/subscription.h"

namespace daf::service {

/// Sizing and policy knobs of a MatchService.
struct ServiceOptions {
  /// Worker threads; each concurrently running job occupies one worker and
  /// one pooled MatchContext.
  uint32_t num_workers = 4;
  /// Admission-queue bound shared across priority lanes; submissions beyond
  /// it are rejected (load shedding), never blocked.
  size_t queue_capacity = 256;
  /// Default end-to-end deadline applied when a job does not set its own
  /// (0 = none).
  uint64_t default_deadline_ms = 0;
  /// Default embedding limit applied when neither the job nor its
  /// MatchOptions set one (0 = enumerate all).
  uint64_t default_limit = 0;
  /// Collect a SearchProfile per job (readable via JobHandle::Profile).
  bool collect_profiles = true;
  /// Opt-in intra-query parallelism for latency-critical work: when > 1,
  /// non-streaming Priority::kInteractive jobs run through the
  /// work-stealing parallel engine with this many threads instead of the
  /// single-threaded engine. The threads are spawned per job (on top of the
  /// worker pool), so size num_workers * intra_query_threads to the
  /// machine. 1 (the default) keeps every job single-threaded.
  uint32_t intra_query_threads = 1;

  // --- Resource governance (docs/ROBUSTNESS.md).

  /// Default per-job memory budget in bytes, applied when the job does not
  /// set QueryJob::max_memory_bytes (0 = unlimited). An exceeding job
  /// terminates as kResourceExhausted with partial counts.
  uint64_t job_memory_limit_bytes = 0;
  /// Service-global memory limit across all concurrently running jobs
  /// (0 = unlimited). Going over exhausts the *charging* job only; the
  /// global ledger recovers when that job releases.
  uint64_t service_memory_limit_bytes = 0;
  /// Footprint-shedding threshold of the context pool: a context returning
  /// with more retained arena capacity is shrunk back to this many bytes
  /// (0 = never shed; contexts keep their high-water footprint warm).
  uint64_t context_retained_bytes = 0;
  /// Watchdog scan period in milliseconds (0 disables the watchdog).
  uint64_t watchdog_interval_ms = 100;
  /// Grace past a job's deadline_ms before the watchdog force-cancels it
  /// (covers the engine's poll cadence plus scheduling noise).
  uint64_t watchdog_grace_ms = 1000;

  // --- Cross-query plan/CS cache (docs/SERVICE.md).

  /// Enables the canonical-key PreparedQuery cache: jobs whose queries are
  /// isomorphic (any vertex relabeling) to an already-served pattern skip
  /// BuildDAG and CS construction, leasing the shared blob read-only.
  /// Results are identical to cold builds; QueryJob::bypass_cache opts a
  /// single job out.
  bool enable_query_cache = true;
  /// Resident-bytes cap of the cache (0 = unlimited). Resident bytes are
  /// also charged against service_memory_limit_bytes when that is set, with
  /// LRU eviction keeping headroom for running jobs.
  uint64_t cache_max_resident_bytes = 64ull << 20;
  /// Cache shards (lock-contention knob).
  uint32_t cache_shards = 8;
  /// Leaf cap of the canonicalizer's individualization search. A query
  /// whose canonization overruns it is served cold (uncacheable), never
  /// incorrectly.
  uint64_t cache_canonical_max_leaves = 65536;

  // --- Dynamic graph and standing queries (docs/DYNAMIC.md).

  /// Dirty-pair budget of incremental CandidateSpace maintenance: a batch
  /// whose flood+recheck work exceeds
  /// max(min_dirty_pairs, dirty_fraction * total candidates) falls back to
  /// a full from-scratch rebuild of that subscription's candidates.
  double dyn_rebuild_dirty_fraction = 0.5;
  uint64_t dyn_rebuild_min_dirty_pairs = 1024;
  /// Bound of each subscription's pending DeltaBatch queue; overflowing it
  /// drops the backlog and leaves a single resync marker (see
  /// DeltaBatch::resync).
  size_t subscription_queue_batches = 64;
  /// Overlay compaction policy of the underlying DeltaGraph.
  double delta_compaction_ratio = 0.25;
  uint64_t delta_compaction_min_edges = 4096;

  // --- Durable state (docs/PERSISTENCE.md).

  /// Durable store backing this service (null = memory-only). When the
  /// store recovered prior state, the constructor's `data` argument is
  /// ignored in favor of the recovered graph; a fresh store is seeded with
  /// `data` as the version-0 snapshot (if that seed write fails the
  /// service degrades to memory-only with a warning on stderr). Configure
  /// the store's delta_options to match delta_compaction_* so a recovered
  /// graph compacts on the same cadence. Once attached, every committed
  /// batch is WAL-appended before it is applied, and overlay compaction
  /// additionally rolls the WAL into a fresh snapshot.
  std::shared_ptr<persist::DurableStore> data_store;
};

/// A transport-agnostic concurrent subgraph-match service: owns one shared
/// data graph (a versioned DeltaGraph — see ApplyUpdates), a bounded
/// multi-priority admission queue, and a worker pool in which every running
/// job executes against a pooled warmed MatchContext (zero steady-state
/// allocations per query once warm).
///
///   daf::service::MatchService service(std::move(data), {.num_workers = 8});
///   daf::service::QueryJob job;
///   job.query = my_query;
///   job.priority = daf::service::Priority::kInteractive;
///   job.deadline_ms = 100;
///   auto handle = service.Submit(std::move(job));
///   ... handle.Status() / handle.Cancel() / handle.NextBatch() ...
///   const daf::MatchResult& r = handle.Result();
///
/// Scheduling: strict priority with FIFO lanes (see AdmissionQueue); a
/// job's deadline covers queue wait plus run, so stragglers stuck behind a
/// burst time out instead of running pointlessly. Cancellation is
/// cooperative through the CancelToken threaded into the DAF core: a
/// running hard query stops within a few thousand search-node expansions.
///
/// The destructor shuts down: admission closes, queued jobs resolve as
/// cancelled, running jobs are cancel-requested and joined. Every admitted
/// job reaches a terminal state before the service is gone, so JobHandles
/// may outlive it.
class MatchService {
 public:
  explicit MatchService(Graph data, ServiceOptions options = {});
  ~MatchService();

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  /// Admits a job (non-blocking). The returned handle is always valid; on
  /// queue overflow or after Shutdown it is already terminal with status
  /// kRejected.
  JobHandle Submit(QueryJob job);

  /// Blocks until every admitted job has reached a terminal state (the
  /// queue is empty and all workers are idle). New submissions during a
  /// Drain extend it.
  void Drain();

  /// Stops admission, resolves queued jobs as cancelled, cancel-requests
  /// running jobs, and joins the workers. Idempotent.
  void Shutdown();

  /// Graceful shutdown for servers (SIGTERM/SIGINT): stops admission,
  /// waits up to `grace_ms` for admitted jobs to drain (stragglers still
  /// running at the deadline are cancelled by the Shutdown that follows),
  /// pushes a final resync marker to every active subscription so
  /// consumers know delivery ends at this version, fsyncs the WAL, then
  /// shuts down. Safe to call more than once.
  void GracefulShutdown(uint64_t grace_ms);

  // --- Dynamic graph and standing queries (docs/DYNAMIC.md).

  /// Applies one update batch atomically: the graph version advances, every
  /// standing query's candidates are maintained (incrementally when the
  /// dirty region is small, by rebuild otherwise), and each subscription's
  /// queue receives the exact embeddings the batch destroyed and created.
  /// Synchronous — when it returns, the deltas are pollable. Update batches
  /// are serialized against each other and against Subscribe; match jobs
  /// keep running concurrently against the snapshot of the version they
  /// were dispatched at.
  UpdateOutcome ApplyUpdates(const dyn::UpdateBatch& batch);

  /// Registers a standing query. The job's query graph and the CS-shaping
  /// options (injective, NLF/refinement) are honored; scheduling fields
  /// (priority, deadline, limits, streaming) are ignored — deltas are
  /// exact, not truncated. The query must be connected and non-empty, and
  /// the engine side channels must be unset, else the returned handle has
  /// ok() == false. For the initial result set, run the same query as an
  /// ordinary job right after subscribing: versions make the handoff exact
  /// (the job sees the snapshot at subscribed_version or later, and every
  /// batch since is pollable).
  SubscriptionHandle Subscribe(QueryJob job);

  /// Forces a checkpoint of the current version to the durable store
  /// (snapshot + WAL rotation + retention). False with *error when
  /// persistence is not configured or the write failed. Ordinary operation
  /// does not need it — compaction-triggered checkpoints happen inside
  /// ApplyUpdates — but operators may want one before a planned restart.
  bool Checkpoint(std::string* error = nullptr);

  /// Immutable CSR snapshot of the current graph version. Lazy and cached:
  /// repeated calls without intervening updates return the same instance,
  /// and applying a batch only pays for materialization when the next job
  /// or snapshot call actually needs it.
  std::shared_ptr<const Graph> Snapshot() const;

  /// Number of update batches applied so far (the initial graph is v0).
  uint64_t GraphVersion() const;

  /// Standing queries currently registered (unsubscribed ones linger until
  /// the next update's sweep).
  size_t ActiveSubscriptions() const;

  /// A point-in-time copy of the service metrics.
  obs::ServiceMetricsSnapshot Metrics() const;

  const ServiceOptions& options() const { return options_; }

  /// Jobs admitted but not yet picked up by a worker.
  size_t QueueDepth() const { return queue_.depth(); }

 private:
  void WorkerLoop();
  /// Periodically scans running jobs for ones past deadline_ms +
  /// watchdog_grace_ms that haven't honored the stop poll; force-cancels
  /// them (once each) and bumps watchdog_fires.
  void WatchdogLoop();
  void ProcessJob(const internal::JobStatePtr& job);
  /// Snapshot + version, read consistently under graph_mutex_.
  std::pair<std::shared_ptr<const Graph>, uint64_t> SnapshotVersion() const;
  /// Pushes one embedding into the job's stream buffer, blocking on
  /// backpressure; false when the consumer closed or the job was cancelled.
  bool DeliverEmbedding(const internal::JobStatePtr& job,
                        std::vector<VertexId> embedding);
  /// Publishes the terminal state and records the job's metrics.
  void FinishJob(const internal::JobStatePtr& job, JobStatus status,
                 bool ran);
  /// Resolves the initial graph: the store's recovered state when it has
  /// one, else `data` (seeding a fresh store with it as version 0). May
  /// reset store_ (degrade to memory-only) when the seed write fails.
  dyn::DeltaGraph InitGraph(Graph data);

  const ServiceOptions options_;
  /// Durable store (null = memory-only); shared with options_.data_store.
  /// Declared before dgraph_: InitGraph consults it. Writer calls are
  /// serialized by update_mutex_; Stats() may race them.
  std::shared_ptr<persist::DurableStore> store_;
  /// The data graph. Mutated only under update_mutex_ (ApplyUpdates /
  /// Subscribe); graph_mutex_ additionally guards every access that can
  /// touch the lazily cached materialization (Snapshot, the mutation window
  /// of ApplyBatch, and CS maintenance, whose rebuild path materializes).
  dyn::DeltaGraph dgraph_;
  mutable std::mutex graph_mutex_;
  /// Serializes update batches and subscription registration end to end
  /// (mutable: metric snapshots count active subscriptions under it).
  mutable std::mutex update_mutex_;
  /// Standing queries; swept of unsubscribed entries on each update.
  /// Guarded by update_mutex_.
  std::vector<internal::SubscriptionStatePtr> subscriptions_;
  std::atomic<uint64_t> next_subscription_id_{1};
  AdmissionQueue queue_;
  ContextPool contexts_;
  /// Service-global memory ledger; every job's per-job budget charges
  /// through it as its parent.
  MemoryBudget global_budget_;
  /// Cross-query plan/CS cache (null when disabled); resident bytes charge
  /// the global ledger through a child budget.
  std::unique_ptr<QueryCache> cache_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> next_start_seq_{1};
  std::atomic<bool> shutdown_{false};
  /// Set by GracefulShutdown before the drain wait: Submit and
  /// ApplyUpdates reject, so inflight_ can only fall.
  std::atomic<bool> draining_{false};
  std::once_flag shutdown_once_;

  // Metrics and drain bookkeeping (one lock; all updates are O(1)).
  mutable std::mutex metrics_mutex_;
  std::condition_variable idle_cv_;
  obs::ServiceCounters counters_;
  obs::LatencyHistogram wait_hist_;
  obs::LatencyHistogram run_hist_;
  obs::LatencyHistogram total_hist_;
  uint64_t embeddings_streamed_ = 0;
  uint64_t inflight_ = 0;  // admitted, not yet terminal
  uint32_t running_ = 0;   // currently on a worker
  // Jobs currently on a worker, so Shutdown (and the watchdog) can
  // cancel-request them.
  std::vector<internal::JobStatePtr> running_jobs_;
  // Resource-governance accounting (guarded by metrics_mutex_).
  uint64_t watchdog_fires_ = 0;
  uint64_t budget_rejections_ = 0;
  uint64_t peak_job_bytes_ = 0;
  // Dynamic-graph accounting (guarded by metrics_mutex_).
  uint64_t dyn_batches_applied_ = 0;
  uint64_t dyn_batches_rejected_ = 0;
  uint64_t dyn_cs_incremental_ = 0;
  uint64_t dyn_cs_rebuilds_ = 0;
  uint64_t dyn_dirty_pairs_ = 0;
  uint64_t dyn_peak_dirty_pairs_ = 0;
  uint64_t dyn_embeddings_created_ = 0;
  uint64_t dyn_embeddings_destroyed_ = 0;
  uint64_t dyn_resyncs_ = 0;
  obs::LatencyHistogram notify_hist_;  // per-subscription notify latency
  // Wakes the watchdog early on shutdown (waits on metrics_mutex_).
  std::condition_variable watchdog_cv_;
};

}  // namespace daf::service

#endif  // DAF_SERVICE_MATCH_SERVICE_H_

#ifndef DAF_SERVICE_JOB_H_
#define DAF_SERVICE_JOB_H_

#include <cstdint>

#include "daf/engine.h"
#include "graph/graph.h"

namespace daf::service {

/// Scheduling class of a submitted query. The admission queue is strict:
/// a worker always picks the highest class with waiting jobs, FIFO within
/// a class; there is no aging (a saturating stream of interactive jobs can
/// starve batch work — by design, the serving tier's contract).
enum class Priority : uint8_t {
  kInteractive = 0,  // latency-sensitive, always scheduled first
  kNormal = 1,       // the default
  kBatch = 2,        // throughput work, runs when nothing else waits
};
inline constexpr int kNumPriorities = 3;

/// Lifecycle of a job. Queued -> Running -> one terminal state; Rejected
/// jobs never enter the queue, and a cancel observed while still queued
/// goes straight to Cancelled without running.
enum class JobStatus : uint8_t {
  kQueued = 0,
  kRunning,
  kDone,       // terminal: ran to a normal MatchResult (incl. limit hits)
  kCancelled,  // terminal: cooperative cancel, while queued or mid-search
  kTimedOut,   // terminal: per-job deadline expired, queued or mid-run
  kRejected,   // terminal: queue overflow or service shut down
  kFailed,     // terminal: the engine reported an error (result.ok false)
  kResourceExhausted,  // terminal: memory budget exhausted; partial counts
};

/// True for the states a job can never leave.
constexpr bool IsTerminal(JobStatus s) {
  return s != JobStatus::kQueued && s != JobStatus::kRunning;
}

/// How the cross-query plan/CS cache served a job. kNone covers every path
/// that never performed a cache lookup: the cache disabled, the job opting
/// out via QueryJob::bypass_cache, a job that never ran, or an uncacheable
/// query (canonization overran its leaf cap). kCoalesced means the job
/// waited on another job's in-flight build of the same canonical pattern
/// instead of building its own.
enum class CacheOutcome : uint8_t {
  kNone = 0,
  kHit,
  kMiss,
  kCoalesced,
};

const char* ToString(JobStatus s);
const char* ToString(Priority p);
const char* ToString(CacheOutcome o);

/// Parses "interactive" / "normal" / "batch" (returns false on anything
/// else, leaving `*out` untouched).
bool ParsePriority(const char* text, Priority* out);

/// One unit of work submitted to a MatchService: the query graph (owned by
/// the job — the caller's graph is moved/copied in, so the submitter may
/// discard theirs immediately), the engine options, and the serving knobs.
struct QueryJob {
  Graph query;

  /// Engine options. `callback`, `progress`, `profile`, and `cancel` must
  /// be unset — the service owns those channels (results stream through the
  /// JobHandle, the profile is collected per job, cancellation goes through
  /// JobHandle::Cancel). `time_limit_ms` still applies as a pure search
  /// budget and composes with `deadline_ms` below (the tighter one wins).
  MatchOptions options;

  Priority priority = Priority::kNormal;

  /// End-to-end budget in milliseconds, measured from submission — queue
  /// wait counts against it, so a job that waits too long times out without
  /// ever running. 0 = no deadline.
  uint64_t deadline_ms = 0;

  /// Stop after this many embeddings; overrides `options.limit` when
  /// non-zero (0 = keep options.limit, which may itself be 0 = all).
  uint64_t limit = 0;

  /// When true the job's embeddings are delivered through the handle's
  /// batch API (JobHandle::NextBatch) with bounded buffering: a full buffer
  /// blocks the search (backpressure) until the consumer drains it or the
  /// job is cancelled. When false only counts are reported.
  bool stream_embeddings = false;

  /// Per-job memory budget in bytes (0 = service default, which may itself
  /// be 0 = unlimited). A job that exceeds it terminates as
  /// kResourceExhausted with partial counts; see docs/ROBUSTNESS.md.
  uint64_t max_memory_bytes = 0;

  /// When true the job never consults the cross-query plan/CS cache: it
  /// builds (and does not publish) its own DAG + CandidateSpace, exactly as
  /// if the cache were disabled. Differential tests use this to get a cold
  /// baseline from a warmed service.
  bool bypass_cache = false;
};

}  // namespace daf::service

#endif  // DAF_SERVICE_JOB_H_

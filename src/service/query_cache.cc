#include "service/query_cache.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/fault_inject.h"

namespace daf::service {

namespace {

// Packs the CS-shaping options — the only MatchOptions that change the
// cached blob — into one fingerprint word for the key suffix.
uint64_t OptionsFingerprint(const MatchOptions& options) {
  uint64_t fp = static_cast<uint64_t>(
      std::clamp(options.refinement_steps, 0, 255));
  if (options.use_nlf_filter) fp |= 1u << 8;
  if (options.use_mnd_filter) fp |= 1u << 9;
  if (options.injective) fp |= 1u << 10;
  return fp;
}

}  // namespace

size_t QueryCache::KeyHash::operator()(const Key& k) const {
  // FNV-1a over the key words; the canonical encoding already mixes the
  // graph structure, so a simple fold distributes well across shards.
  uint64_t h = 1469598103934665603ULL;
  for (uint64_t w : k) {
    h = (h ^ w) * 1099511628211ULL;
    h = (h ^ (w >> 32)) * 1099511628211ULL;
  }
  return static_cast<size_t>(h);
}

QueryCache::QueryCache(QueryCacheOptions options)
    : options_(options), ledger_(0, options.budget) {
  const uint32_t shards = std::max(options_.shards, 1u);
  shards_.reserve(shards);
  for (uint32_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

QueryCache::Shard& QueryCache::ShardFor(const Key& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

bool QueryCache::EvictOne(Shard& shard) {
  if (shard.lru.empty()) return false;
  if (FAULT_POINT(cache_evict)) return false;  // injected eviction failure
  const Key& victim = shard.lru.back();
  auto it = shard.entries.find(victim);
  const uint64_t bytes = it->second.bytes;
  // The blob itself dies with its last lease, not here: erasing the entry
  // only drops the cache's reference.
  shard.entries.erase(it);
  shard.lru.pop_back();
  resident_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  entries_.fetch_sub(1, std::memory_order_relaxed);
  ledger_.Uncharge(bytes);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool QueryCache::Insert(Shard& shard, const Key& key,
                        std::shared_ptr<const PreparedQuery> blob) {
  if (FAULT_POINT(cache_insert)) return false;  // injected insert failure
  const uint64_t bytes = blob->resident_bytes;
  if (options_.max_resident_bytes != 0) {
    while (resident_bytes_.load(std::memory_order_relaxed) + bytes >
           options_.max_resident_bytes) {
      if (!EvictOne(shard)) return false;
    }
  }
  // Headroom against the parent ledger: a failed Charge latches exhaustion
  // on the private leaf only; undo, reset, and evict until the charge fits
  // (or nothing is left to evict in this shard).
  while (!ledger_.Charge(bytes)) {
    ledger_.Uncharge(bytes);
    ledger_.ResetExhausted();
    if (!EvictOne(shard)) return false;
  }
  shard.lru.push_front(key);
  Entry entry;
  entry.blob = std::move(blob);
  entry.bytes = bytes;
  entry.lru_it = shard.lru.begin();
  shard.entries.emplace(key, std::move(entry));
  resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

QueryCache::Lease QueryCache::Acquire(const Graph& query, const Graph& data,
                                      const MatchOptions& options,
                                      uint64_t graph_id) {
  Lease lease;
  lease.form = CanonicalizeQuery(query, options_.canonical_max_leaves);
  if (!lease.form.complete) {
    // Canonization abandoned: the key is not relabeling-invariant, so a
    // cache entry under it would be wrong for some isomorph. Run cold.
    uncacheable_.fetch_add(1, std::memory_order_relaxed);
    return lease;
  }

  Key key;
  key.reserve(lease.form.key.size() + 3);
  key.push_back(OptionsFingerprint(options));
  key.push_back(options_.graph_id);
  key.push_back(graph_id);
  key.insert(key.end(), lease.form.key.begin(), lease.form.key.end());
  Shard& shard = ShardFor(key);
  lookups_.fetch_add(1, std::memory_order_relaxed);

  std::shared_ptr<InFlight> latch;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      hits_.fetch_add(1, std::memory_order_relaxed);
      lease.prepared = it->second.blob;
      lease.outcome = CacheOutcome::kHit;
      return lease;
    }
    auto in_it = shard.in_flight.find(key);
    if (in_it != shard.in_flight.end()) {
      latch = in_it->second;
    } else {
      latch = std::make_shared<InFlight>();
      shard.in_flight.emplace(key, latch);
      builder = true;
    }
  }

  if (!builder) {
    // Coalesce onto the in-flight build, polling our own cancel token so a
    // cancelled waiter is not held hostage by someone else's long build.
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    lease.outcome = CacheOutcome::kCoalesced;
    std::unique_lock<std::mutex> lock(latch->mutex);
    while (!latch->done) {
      if (options.cancel != nullptr && options.cancel->cancelled()) {
        lease.interrupted = StopCause::kCancel;
        return lease;
      }
      latch->cv.wait_for(lock, std::chrono::milliseconds(10));
    }
    lease.prepared = latch->result;
    lease.interrupted = latch->cause;
    return lease;
  }

  // Miss: build once, publish under the latch. The build runs under the
  // calling job's own stop sources, so it is exactly as cancellable as a
  // cold run; failure unregisters the latch and publishes nothing.
  misses_.fetch_add(1, std::memory_order_relaxed);
  lease.outcome = CacheOutcome::kMiss;
  Graph canonical = BuildCanonicalGraph(query, lease.form);
  PrepareOutcome built = PrepareQuery(canonical, data, options);

  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (built.prepared != nullptr) {
      if (!Insert(shard, key, built.prepared)) {
        // Not retained (fault injection or memory pressure): the caller —
        // and every latch waiter — still gets the blob; only reuse by
        // *later* submissions is lost.
        insert_failures_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    shard.in_flight.erase(key);
  }
  {
    std::lock_guard<std::mutex> lock(latch->mutex);
    latch->done = true;
    latch->result = built.prepared;
    latch->cause = built.interrupted;
    latch->cv.notify_all();
  }
  lease.prepared = built.prepared;
  lease.interrupted = built.interrupted;
  return lease;
}

QueryCacheStats QueryCache::Stats() const {
  QueryCacheStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.insert_failures = insert_failures_.load(std::memory_order_relaxed);
  s.uncacheable = uncacheable_.load(std::memory_order_relaxed);
  s.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  return s;
}

void QueryCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, entry] : shard->entries) {
      resident_bytes_.fetch_sub(entry.bytes, std::memory_order_relaxed);
      entries_.fetch_sub(1, std::memory_order_relaxed);
      ledger_.Uncharge(entry.bytes);
    }
    shard->entries.clear();
    shard->lru.clear();
  }
}

}  // namespace daf::service

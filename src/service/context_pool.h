#ifndef DAF_SERVICE_CONTEXT_POOL_H_
#define DAF_SERVICE_CONTEXT_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "daf/match_context.h"
#include "util/topo.h"

namespace daf::service {

/// A fixed-size pool of reusable MatchContexts — the serving-tier face of
/// PR 2's warm-engine contract. Each context accumulates arena blocks and
/// scratch capacity over its first few queries and then serves every later
/// query allocation-free; pooling keeps that warmth across jobs and workers
/// instead of tying it to one thread's lifetime.
///
/// Acquire() hands out an RAII lease; the context returns to the free list
/// when the lease dies. A context serves exactly one lease at a time
/// (MatchContext's own contract), so holding a lease is exclusive access.
///
/// Contexts are distributed round-robin over the topology's sockets at
/// construction and keep that home socket for life: a returned context
/// rejoins its home free list, and Acquire prefers the caller's socket, so
/// a warmed arena's pages keep being touched from the NUMA node they were
/// faulted in on. When the local list is empty the lease spills to a remote
/// socket rather than blocking (work beats locality). On single-socket
/// topologies (the Flat fallback included) everything is one local list and
/// the behavior is exactly the old single-free-list pool.
class ContextPool {
 public:
  /// Creates `capacity` (>= 1) cold contexts up front; they warm on use.
  /// `retained_bytes_limit` is the footprint-shedding threshold: a context
  /// returning with more than this much retained arena capacity is shrunk
  /// back to the threshold before rejoining the free list, so one oversized
  /// query can't pin its high-water footprint into the pool forever.
  /// 0 (the default) disables shedding — contexts keep everything warm.
  /// `topo` (not owned; defaults to the machine topology) supplies the
  /// socket layout for the per-socket free lists.
  explicit ContextPool(uint32_t capacity, uint64_t retained_bytes_limit = 0,
                       const HwTopology* topo = nullptr);

  ContextPool(const ContextPool&) = delete;
  ContextPool& operator=(const ContextPool&) = delete;

  /// Exclusive access to one pooled context for the lease's lifetime.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { Release(); }

    MatchContext* get() const { return context_; }
    MatchContext* operator->() const { return context_; }
    explicit operator bool() const { return context_ != nullptr; }

    /// Returns the context to the pool early (idempotent).
    void Release();

   private:
    friend class ContextPool;
    Lease(ContextPool* pool, MatchContext* context)
        : pool_(pool), context_(context) {}

    ContextPool* pool_ = nullptr;
    MatchContext* context_ = nullptr;
  };

  /// Blocks until a context is free and leases it, preferring one whose
  /// home socket is the calling thread's current socket.
  Lease Acquire();

  /// Blocks until a context is free and leases it, preferring
  /// `preferred_socket`'s free list (tests and socket-aware callers).
  Lease Acquire(uint32_t preferred_socket);

  /// Leases a context only if one is free right now (same preference).
  std::optional<Lease> TryAcquire();

  uint32_t capacity() const;

  /// Contexts currently free (diagnostics; stale by the time you read it).
  uint32_t available() const;

  /// Most contexts ever leased at once (the pool high-water mark).
  uint32_t peak_in_use() const;

  /// Sockets the free lists are spread over (1 on flat topologies).
  uint32_t num_sockets() const { return num_sockets_; }

  /// Leases served from the preferred socket's own free list.
  uint64_t local_leases() const;

  /// Leases that spilled to another socket's free list.
  uint64_t remote_leases() const;

  /// Home socket of a context (tests; linear scan).
  uint32_t HomeSocketOf(const MatchContext* context) const;

  /// Releases the retained memory of every currently-free context (leased
  /// contexts are untouched). Use after a burst of oversized queries to
  /// shed the high-water footprint; the next jobs re-warm.
  void TrimFree();

 private:
  void Return(MatchContext* context);
  /// Pops a free context, local list first; null when all lists are empty.
  /// Caller holds mutex_.
  MatchContext* TakeLocked(uint32_t preferred_socket);
  Lease AcquirePreferred(uint32_t preferred_socket);

  mutable std::mutex mutex_;
  std::condition_variable available_cv_;
  // unique_ptr storage keeps context addresses stable for outstanding
  // leases regardless of vector moves.
  std::vector<std::unique_ptr<MatchContext>> contexts_;
  std::vector<uint32_t> home_socket_;  // parallel to contexts_
  std::vector<std::vector<MatchContext*>> free_;  // one list per socket
  const HwTopology* topo_ = nullptr;  // not owned
  uint32_t num_sockets_ = 1;
  uint64_t retained_bytes_limit_ = 0;
  uint32_t in_use_ = 0;
  uint32_t peak_in_use_ = 0;
  uint64_t local_leases_ = 0;
  uint64_t remote_leases_ = 0;
};

}  // namespace daf::service

#endif  // DAF_SERVICE_CONTEXT_POOL_H_

#ifndef DAF_SERVICE_JOB_HANDLE_H_
#define DAF_SERVICE_JOB_HANDLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "service/job_state.h"

namespace daf::service {

/// The caller's view of one submitted job. Cheap to copy (all copies share
/// the job's state) and safe to keep after the MatchService is gone — the
/// service resolves every admitted job to a terminal state before its
/// destructor returns.
///
/// Thread safety: Status/Wait/Cancel/result may be called from any thread;
/// the streaming side (NextBatch/TryNextBatch/CloseStream) is
/// single-consumer, like EmbeddingCursor.
class JobHandle {
 public:
  /// An empty handle (valid() false); Submit never returns one.
  JobHandle() = default;

  bool valid() const { return state_ != nullptr; }
  uint64_t id() const { return state_->id; }
  Priority priority() const { return state_->priority; }

  /// Non-blocking status probe.
  JobStatus Status() const {
    return state_->status.load(std::memory_order_acquire);
  }

  /// True once the job reached a terminal state.
  bool Done() const { return IsTerminal(Status()); }

  /// Requests cooperative cancellation. Non-blocking; the job resolves to
  /// kCancelled within a few thousand search-node expansions when running
  /// (or when a worker pops it, if still queued). A job whose search
  /// already finished stays kDone — cancellation never un-completes work.
  void Cancel();

  /// Blocks until the job is terminal and returns the final status.
  JobStatus Wait();

  /// Blocks up to `timeout_ms`; returns the status at that point (possibly
  /// still kQueued/kRunning).
  JobStatus WaitFor(uint64_t timeout_ms);

  /// Streamed embeddings: up to `max` embeddings, blocking until at least
  /// one is available or the job is terminal with a drained buffer (then
  /// returns empty — the stream's end). Only meaningful for jobs submitted
  /// with `stream_embeddings`; count-only jobs return empty immediately
  /// after completion.
  std::vector<std::vector<VertexId>> NextBatch(size_t max = 256);

  /// Non-blocking variant: whatever is buffered right now (up to `max`).
  std::vector<std::vector<VertexId>> TryNextBatch(size_t max = 256);

  /// Abandons the stream: buffered embeddings are dropped and the search
  /// stops early (reported as `limit_reached`, like EmbeddingCursor's
  /// Close). The job still resolves and its result stays readable.
  void CloseStream();

  /// Blocks until terminal, then the final MatchResult. On kCancelled /
  /// kTimedOut the result carries partial counts with Complete() == false;
  /// on kRejected it is a default result with ok == false.
  const MatchResult& Result();

  /// Blocks until terminal, then the job's SearchProfile (all-zero when the
  /// service was configured with collect_profiles off or the job never
  /// ran).
  const obs::SearchProfile& Profile();

  /// Queue wait / worker run time in ms; valid once the job is terminal.
  double wait_ms() const { return state_->wait_ms; }
  double run_ms() const { return state_->run_ms; }

  /// Global worker-pickup order (1-based; 0 = never picked up). Exposes the
  /// scheduling decision for tests and load analysis.
  uint64_t start_seq() const { return state_->start_seq; }

  /// How the cross-query plan/CS cache served this job (kNone when the
  /// cache is disabled, bypassed, or the job never ran). Valid once the job
  /// is terminal.
  CacheOutcome cache_outcome() const { return state_->cache_outcome; }

 private:
  friend class MatchService;
  explicit JobHandle(internal::JobStatePtr state)
      : state_(std::move(state)) {}

  internal::JobStatePtr state_;
};

}  // namespace daf::service

#endif  // DAF_SERVICE_JOB_HANDLE_H_

#include "service/job.h"

#include <cstring>

namespace daf::service {

const char* ToString(JobStatus s) {
  switch (s) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kDone:
      return "done";
    case JobStatus::kCancelled:
      return "cancelled";
    case JobStatus::kTimedOut:
      return "timed_out";
    case JobStatus::kRejected:
      return "rejected";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kResourceExhausted:
      return "resource_exhausted";
  }
  return "unknown";
}

const char* ToString(Priority p) {
  switch (p) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kNormal:
      return "normal";
    case Priority::kBatch:
      return "batch";
  }
  return "unknown";
}

const char* ToString(CacheOutcome o) {
  switch (o) {
    case CacheOutcome::kNone:
      return "none";
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kCoalesced:
      return "coalesced";
  }
  return "unknown";
}

bool ParsePriority(const char* text, Priority* out) {
  if (std::strcmp(text, "interactive") == 0) {
    *out = Priority::kInteractive;
  } else if (std::strcmp(text, "normal") == 0) {
    *out = Priority::kNormal;
  } else if (std::strcmp(text, "batch") == 0) {
    *out = Priority::kBatch;
  } else {
    return false;
  }
  return true;
}

}  // namespace daf::service

#ifndef DAF_SERVICE_QUERY_CACHE_H_
#define DAF_SERVICE_QUERY_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "daf/prepared.h"
#include "graph/canonical.h"
#include "graph/graph.h"
#include "service/job.h"
#include "util/memory_budget.h"

namespace daf::service {

/// Sizing and policy knobs of a QueryCache.
struct QueryCacheOptions {
  /// Independent shards (keys are hash-partitioned); more shards = less
  /// lock contention between workers resolving different patterns.
  uint32_t shards = 8;
  /// Total resident-bytes cap across all shards (0 = unlimited). Inserting
  /// past it evicts LRU entries from the inserting key's shard; an entry
  /// that does not fit even into an empty shard is simply not cached.
  uint64_t max_resident_bytes = 64ull << 20;
  /// Optional ledger (not owned; e.g. the service-global MemoryBudget) that
  /// resident cache bytes are charged to through a private child budget.
  /// Insertion pre-checks headroom and evicts until the charge fits, so the
  /// cache never pushes the parent over its limit (which would exhaust
  /// every job budget chained under it).
  MemoryBudget* budget = nullptr;
  /// Individualization-search leaf cap of the canonicalizer; queries whose
  /// canonization overruns it are treated as uncacheable.
  uint64_t canonical_max_leaves = 65536;
  /// Fingerprint of the data graph (a version/generation id); part of every
  /// key, so one cache instance can survive graph swaps without serving
  /// stale candidate spaces.
  uint64_t graph_id = 0;
};

/// Monotonic counters plus the current footprint of a QueryCache. The
/// classification invariant: every Acquire on a cacheable query is exactly
/// one of hit / miss / coalesced, so `hits + misses + coalesced == lookups`
/// always holds; uncacheable queries are counted separately and never
/// enter the lookup path.
struct QueryCacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;        // served from a resident entry
  uint64_t misses = 0;      // this caller built (insert may still fail)
  uint64_t coalesced = 0;   // waited on another caller's in-flight build
  uint64_t evictions = 0;   // entries removed by LRU pressure
  uint64_t insert_failures = 0;  // built but not retained (fault/pressure)
  uint64_t uncacheable = 0;      // canonization overran its leaf cap
  uint64_t resident_bytes = 0;   // current footprint
  uint64_t entries = 0;          // current entry count
};

/// A sharded, refcounted, canonically-keyed LRU cache of PreparedQuery
/// blobs — the cross-query reuse layer of ROADMAP item 3.
///
/// Keying: the submitted query is canonicalized (graph/canonical.h), and the
/// canonical encoding is extended with the CS-shaping option fingerprint
/// (refinement steps, NLF/MND filters, injectivity) and the data-graph id.
/// Any two submissions that are isomorphic as labeled graphs — arbitrary
/// vertex relabelings included — therefore share one entry; options that
/// only affect the *search* (order, failing sets, limits, equivalence,
/// parallelism) deliberately do not key, because the cached prefix is
/// identical under all of them.
///
/// Concurrency: entries are std::shared_ptr<const PreparedQuery>, so a hit
/// leases the blob read-only and eviction never frees memory still in use —
/// the last lease holder does. Concurrent identical misses coalesce: the
/// first caller registers a per-key in-flight latch and builds; everyone
/// else blocks on the latch (polling their own cancel token) and shares the
/// one build. A build that is cancelled or interrupted resolves the latch
/// empty and unregisters it — no poisoned entry is ever published; waiters
/// and later callers fall back to a cold build.
///
/// Memory: each entry's resident_bytes counts against `max_resident_bytes`
/// and (when configured) against a child ledger under `budget`; insertion
/// evicts LRU-first until the new entry fits and gives up (keeping the blob
/// for the requesting caller only) when it cannot.
class QueryCache {
 public:
  /// The outcome of one Acquire. A null `prepared` means the cache cannot
  /// serve this submission — the query is uncacheable (`outcome` kNone),
  /// the build was interrupted (`interrupted` names the cause), or a
  /// coalesced wait ended without a blob — and the caller should run the
  /// ordinary cold path on the *submitted* query.
  ///
  /// A non-null `prepared` is a lease: the blob stays valid for as long as
  /// the shared_ptr is held, across any concurrent eviction. Searches run
  /// against the blob's *canonical* query graph; an embedding e of it maps
  /// back to the submitted vertex numbering as
  ///   e_submitted[u] = e[form.to_canonical[u]].
  struct Lease {
    std::shared_ptr<const PreparedQuery> prepared;
    CanonicalQuery form;
    CacheOutcome outcome = CacheOutcome::kNone;
    /// Why the build produced no blob (kNone otherwise). On the miss path
    /// this is the caller's own cancel/deadline/budget firing mid-build; on
    /// the coalesced path it may be the *builder's* — the caller should
    /// then fall back cold rather than fail its job.
    StopCause interrupted = StopCause::kNone;
  };

  explicit QueryCache(QueryCacheOptions options = {});
  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Resolves one submission: canonicalize, then hit / coalesce / build.
  /// `options` supplies both the CS-shaping fingerprint and the build's
  /// stop sources (cancel, time_limit_ms, memory_budget) — a miss builds
  /// under the calling job's own deadline and budget, exactly like a cold
  /// run. `graph_id` is the version of `data` at this call (on top of the
  /// construction-time QueryCacheOptions::graph_id): it keys the lookup, so
  /// blobs built against an older version of a mutating graph can never be
  /// served after an update — they linger unreachable until LRU pressure
  /// evicts them. Thread-safe; any number of workers may call concurrently.
  Lease Acquire(const Graph& query, const Graph& data,
                const MatchOptions& options, uint64_t graph_id = 0);

  /// Point-in-time counter snapshot (lock-free).
  QueryCacheStats Stats() const;

  /// Drops every resident entry (leases stay valid). In-flight builds are
  /// not affected; they may still publish afterwards.
  void Clear();

 private:
  struct InFlight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const PreparedQuery> result;  // null => build failed
    StopCause cause = StopCause::kNone;
  };

  using Key = std::vector<uint64_t>;
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    std::shared_ptr<const PreparedQuery> blob;
    uint64_t bytes = 0;
    std::list<Key>::iterator lru_it;  // position in Shard::lru
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<Key, Entry, KeyHash> entries;
    std::list<Key> lru;  // front = most recently used
    std::unordered_map<Key, std::shared_ptr<InFlight>, KeyHash> in_flight;
  };

  Shard& ShardFor(const Key& key);
  /// Evicts `shard`'s LRU tail entry; false when the shard is empty or the
  /// cache_evict fault point fired. Caller holds shard.mutex.
  bool EvictOne(Shard& shard);
  /// Makes room for and inserts (key, blob); false when the entry was not
  /// retained (counted as insert_failure). Caller holds shard.mutex.
  bool Insert(Shard& shard, const Key& key,
              std::shared_ptr<const PreparedQuery> blob);

  const QueryCacheOptions options_;
  /// Resident bytes charge through this leaf so an over-limit cache charge
  /// latches exhaustion here (harmless, reset immediately) and never on the
  /// shared parent.
  MemoryBudget ledger_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::atomic<uint64_t> lookups_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> coalesced_{0};
  mutable std::atomic<uint64_t> evictions_{0};
  mutable std::atomic<uint64_t> insert_failures_{0};
  mutable std::atomic<uint64_t> uncacheable_{0};
  std::atomic<uint64_t> resident_bytes_{0};
  std::atomic<uint64_t> entries_{0};
};

}  // namespace daf::service

#endif  // DAF_SERVICE_QUERY_CACHE_H_

#ifndef DAF_SERVICE_JOB_STATE_H_
#define DAF_SERVICE_JOB_STATE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "service/job.h"
#include "util/stop.h"
#include "util/timer.h"

namespace daf::service::internal {

/// The shared state behind one submitted job, co-owned by the MatchService
/// (until the job reaches a terminal state) and every JobHandle copy. Not
/// part of the public API — user code goes through JobHandle.
///
/// Locking: fields in the "guarded" block are protected by `mutex`; the
/// identity block is immutable after Submit; `status` and `cancel` are
/// atomics readable without the lock. The worker publishes `result`,
/// `profile`, `wait_ms`, and `run_ms` before setting `finished` under the
/// lock, so any reader that observed `finished` (or a terminal `status`
/// via JobHandle::Wait) reads them race-free.
struct JobState {
  // --- Identity: immutable after Submit.
  uint64_t id = 0;
  Priority priority = Priority::kNormal;
  Graph query;
  MatchOptions options;  // limit/deadline already folded in by Submit
  uint64_t deadline_ms = 0;
  bool stream = false;
  uint64_t memory_limit = 0;  // per-job budget bytes (0 = unlimited)
  bool bypass_cache = false;  // QueryJob::bypass_cache

  // --- Lock-free control plane.
  CancelToken cancel;
  std::atomic<JobStatus> status{JobStatus::kQueued};
  // Set once by the watchdog when it force-cancels this job (at most one
  // fire per job; the exchange is the claim).
  std::atomic<bool> watchdog_fired{false};
  Stopwatch since_submit;  // started by Submit

  // --- Guarded by `mutex`.
  std::mutex mutex;
  std::condition_variable producer_cv;  // buffer space / cancel / close
  std::condition_variable consumer_cv;  // buffer data / terminal state
  std::deque<std::vector<VertexId>> buffer;  // streamed embeddings
  bool consumer_closed = false;  // JobHandle::CloseStream
  bool finished = false;         // terminal state reached; result valid
  uint64_t start_seq = 0;        // global worker-pickup order (0 = never)
  uint64_t delivered = 0;        // embeddings handed to the consumer
  double wait_ms = 0;            // submission -> pickup
  double run_ms = 0;             // pickup -> terminal
  uint64_t peak_bytes = 0;          // budget high-water of the run
  uint64_t budget_rejections = 0;   // over-limit charges of the run
  CacheOutcome cache_outcome = CacheOutcome::kNone;  // plan/CS cache verdict
  MatchResult result;
  obs::SearchProfile profile;

  /// Backpressure bound of the streaming buffer (embeddings, not bytes).
  static constexpr size_t kBufferCapacity = 1024;
};

using JobStatePtr = std::shared_ptr<JobState>;

}  // namespace daf::service::internal

#endif  // DAF_SERVICE_JOB_STATE_H_

#include "service/admission_queue.h"

#include <algorithm>
#include <utility>

namespace daf::service {

AdmissionQueue::AdmissionQueue(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

bool AdmissionQueue::TryPush(internal::JobStatePtr job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || depth_ >= capacity_) return false;
    lanes_[static_cast<size_t>(job->priority)].push_back(std::move(job));
    ++depth_;
  }
  ready_cv_.notify_one();
  return true;
}

internal::JobStatePtr AdmissionQueue::Pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_cv_.wait(lock, [&] { return depth_ > 0 || closed_; });
  if (depth_ == 0) return nullptr;  // closed and drained
  for (auto& lane : lanes_) {
    if (!lane.empty()) {
      internal::JobStatePtr job = std::move(lane.front());
      lane.pop_front();
      --depth_;
      return job;
    }
  }
  return nullptr;  // unreachable: depth_ > 0 implies a non-empty lane
}

std::vector<internal::JobStatePtr> AdmissionQueue::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<internal::JobStatePtr> flushed;
  flushed.reserve(depth_);
  for (auto& lane : lanes_) {
    for (auto& job : lane) flushed.push_back(std::move(job));
    lane.clear();
  }
  depth_ = 0;
  return flushed;
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_cv_.notify_all();
}

size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return depth_;
}

}  // namespace daf::service

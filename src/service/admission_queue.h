#ifndef DAF_SERVICE_ADMISSION_QUEUE_H_
#define DAF_SERVICE_ADMISSION_QUEUE_H_

#include <array>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "service/job_state.h"

namespace daf::service {

/// The bounded multi-priority admission queue of a MatchService: one FIFO
/// lane per Priority class, a single capacity shared across lanes, strict
/// priority on the pop side (the highest non-empty lane wins). Overflow is
/// load shedding — TryPush refuses instead of blocking the submitter, so a
/// saturated service rejects fast rather than building unbounded backlog.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(size_t capacity);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admits a job into its priority lane; false when the queue is at
  /// capacity or closed (the job is then NOT enqueued).
  bool TryPush(internal::JobStatePtr job);

  /// Blocks until a job is available and returns the head of the highest
  /// non-empty lane. Returns null once the queue is closed and drained.
  internal::JobStatePtr Pop();

  /// Removes and returns every queued job (shutdown path: the caller
  /// resolves them as cancelled). Usually preceded by Close().
  std::vector<internal::JobStatePtr> Flush();

  /// Rejects all future pushes and wakes blocked poppers; queued jobs
  /// remain poppable until drained or flushed.
  void Close();

  /// Jobs currently queued (stale by the time you read it).
  size_t depth() const;

  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::array<std::deque<internal::JobStatePtr>, kNumPriorities> lanes_;
  size_t depth_ = 0;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace daf::service

#endif  // DAF_SERVICE_ADMISSION_QUEUE_H_

#include "service/context_pool.h"

#include <algorithm>

#include "util/fault_inject.h"

namespace daf::service {

ContextPool::ContextPool(uint32_t capacity, uint64_t retained_bytes_limit)
    : retained_bytes_limit_(retained_bytes_limit) {
  capacity = std::max(capacity, 1u);
  contexts_.reserve(capacity);
  free_.reserve(capacity);
  for (uint32_t i = 0; i < capacity; ++i) {
    contexts_.push_back(std::make_unique<MatchContext>());
    free_.push_back(contexts_.back().get());
  }
}

ContextPool::Lease& ContextPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    context_ = other.context_;
    other.pool_ = nullptr;
    other.context_ = nullptr;
  }
  return *this;
}

void ContextPool::Lease::Release() {
  if (context_ != nullptr) {
    pool_->Return(context_);
    pool_ = nullptr;
    context_ = nullptr;
  }
}

ContextPool::Lease ContextPool::Acquire() {
  MatchContext* context;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    available_cv_.wait(lock, [&] { return !free_.empty(); });
    context = free_.back();
    free_.pop_back();
    ++in_use_;
    peak_in_use_ = std::max(peak_in_use_, in_use_);
  }
  // Simulated lease fault: the context lost its warmth (as if the pool had
  // to rebuild it); the job still runs, just cold.
  if (FAULT_POINT(context_pool_lease)) context->Trim();
  return Lease(this, context);
}

std::optional<ContextPool::Lease> ContextPool::TryAcquire() {
  MatchContext* context;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (free_.empty()) return std::nullopt;
    context = free_.back();
    free_.pop_back();
    ++in_use_;
    peak_in_use_ = std::max(peak_in_use_, in_use_);
  }
  if (FAULT_POINT(context_pool_lease)) context->Trim();
  return Lease(this, context);
}

uint32_t ContextPool::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<uint32_t>(contexts_.size());
}

uint32_t ContextPool::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<uint32_t>(free_.size());
}

uint32_t ContextPool::peak_in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_in_use_;
}

void ContextPool::TrimFree() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (MatchContext* context : free_) context->Trim();
}

void ContextPool::Return(MatchContext* context) {
  // Footprint shedding (outside the lock: the context is still exclusively
  // ours until it joins the free list).
  if (retained_bytes_limit_ > 0 &&
      context->arena_stats().capacity_bytes > retained_bytes_limit_) {
    context->ShrinkTo(retained_bytes_limit_);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(context);
    --in_use_;
  }
  available_cv_.notify_one();
}

}  // namespace daf::service

#include "service/context_pool.h"

#include <algorithm>

#include "util/fault_inject.h"

namespace daf::service {

ContextPool::ContextPool(uint32_t capacity, uint64_t retained_bytes_limit,
                         const HwTopology* topo)
    : topo_(topo != nullptr ? topo : &HwTopology::Get()),
      retained_bytes_limit_(retained_bytes_limit) {
  capacity = std::max(capacity, 1u);
  num_sockets_ = std::max(topo_->num_sockets, 1u);
  contexts_.reserve(capacity);
  home_socket_.reserve(capacity);
  free_.resize(num_sockets_);
  for (uint32_t i = 0; i < capacity; ++i) {
    contexts_.push_back(std::make_unique<MatchContext>());
    // Round-robin home sockets: capacity is spread evenly so every socket
    // has warm contexts of its own.
    const uint32_t socket = i % num_sockets_;
    home_socket_.push_back(socket);
    free_[socket].push_back(contexts_.back().get());
  }
}

ContextPool::Lease& ContextPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    context_ = other.context_;
    other.pool_ = nullptr;
    other.context_ = nullptr;
  }
  return *this;
}

void ContextPool::Lease::Release() {
  if (context_ != nullptr) {
    pool_->Return(context_);
    pool_ = nullptr;
    context_ = nullptr;
  }
}

MatchContext* ContextPool::TakeLocked(uint32_t preferred_socket) {
  preferred_socket %= num_sockets_;
  for (uint32_t offset = 0; offset < num_sockets_; ++offset) {
    std::vector<MatchContext*>& list =
        free_[(preferred_socket + offset) % num_sockets_];
    if (list.empty()) continue;
    MatchContext* context = list.back();
    list.pop_back();
    ++in_use_;
    peak_in_use_ = std::max(peak_in_use_, in_use_);
    if (offset == 0) {
      ++local_leases_;
    } else {
      ++remote_leases_;
    }
    return context;
  }
  return nullptr;
}

ContextPool::Lease ContextPool::AcquirePreferred(uint32_t preferred_socket) {
  MatchContext* context = nullptr;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    available_cv_.wait(lock, [&] {
      context = TakeLocked(preferred_socket);
      return context != nullptr;
    });
  }
  // Simulated lease fault: the context lost its warmth (as if the pool had
  // to rebuild it); the job still runs, just cold.
  if (FAULT_POINT(context_pool_lease)) context->Trim();
  return Lease(this, context);
}

ContextPool::Lease ContextPool::Acquire() {
  return AcquirePreferred(topo_->CurrentSocket());
}

ContextPool::Lease ContextPool::Acquire(uint32_t preferred_socket) {
  return AcquirePreferred(preferred_socket);
}

std::optional<ContextPool::Lease> ContextPool::TryAcquire() {
  MatchContext* context;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    context = TakeLocked(topo_->CurrentSocket());
    if (context == nullptr) return std::nullopt;
  }
  if (FAULT_POINT(context_pool_lease)) context->Trim();
  return Lease(this, context);
}

uint32_t ContextPool::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<uint32_t>(contexts_.size());
}

uint32_t ContextPool::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint32_t total = 0;
  for (const std::vector<MatchContext*>& list : free_) {
    total += static_cast<uint32_t>(list.size());
  }
  return total;
}

uint32_t ContextPool::peak_in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_in_use_;
}

uint64_t ContextPool::local_leases() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return local_leases_;
}

uint64_t ContextPool::remote_leases() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return remote_leases_;
}

uint32_t ContextPool::HomeSocketOf(const MatchContext* context) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < contexts_.size(); ++i) {
    if (contexts_[i].get() == context) return home_socket_[i];
  }
  return 0;
}

void ContextPool::TrimFree() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::vector<MatchContext*>& list : free_) {
    for (MatchContext* context : list) context->Trim();
  }
}

void ContextPool::Return(MatchContext* context) {
  // Footprint shedding (outside the lock: the context is still exclusively
  // ours until it joins the free list).
  if (retained_bytes_limit_ > 0 &&
      context->arena_stats().capacity_bytes > retained_bytes_limit_) {
    context->ShrinkTo(retained_bytes_limit_);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Back to the home free list: the context's warmed pages live on its
    // home socket's node, so that is where it should be re-leased from.
    uint32_t socket = 0;
    for (size_t i = 0; i < contexts_.size(); ++i) {
      if (contexts_[i].get() == context) {
        socket = home_socket_[i];
        break;
      }
    }
    free_[socket].push_back(context);
    --in_use_;
  }
  available_cv_.notify_one();
}

}  // namespace daf::service

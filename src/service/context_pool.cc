#include "service/context_pool.h"

#include <algorithm>

namespace daf::service {

ContextPool::ContextPool(uint32_t capacity) {
  capacity = std::max(capacity, 1u);
  contexts_.reserve(capacity);
  free_.reserve(capacity);
  for (uint32_t i = 0; i < capacity; ++i) {
    contexts_.push_back(std::make_unique<MatchContext>());
    free_.push_back(contexts_.back().get());
  }
}

ContextPool::Lease& ContextPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    context_ = other.context_;
    other.pool_ = nullptr;
    other.context_ = nullptr;
  }
  return *this;
}

void ContextPool::Lease::Release() {
  if (context_ != nullptr) {
    pool_->Return(context_);
    pool_ = nullptr;
    context_ = nullptr;
  }
}

ContextPool::Lease ContextPool::Acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  available_cv_.wait(lock, [&] { return !free_.empty(); });
  MatchContext* context = free_.back();
  free_.pop_back();
  return Lease(this, context);
}

std::optional<ContextPool::Lease> ContextPool::TryAcquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (free_.empty()) return std::nullopt;
  MatchContext* context = free_.back();
  free_.pop_back();
  return Lease(this, context);
}

uint32_t ContextPool::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<uint32_t>(contexts_.size());
}

uint32_t ContextPool::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<uint32_t>(free_.size());
}

void ContextPool::TrimFree() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (MatchContext* context : free_) context->Trim();
}

void ContextPool::Return(MatchContext* context) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(context);
  }
  available_cv_.notify_one();
}

}  // namespace daf::service

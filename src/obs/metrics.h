#ifndef DAF_OBS_METRICS_H_
#define DAF_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace daf::obs {

/// Observability primitives for the DAF pipeline.
///
/// A `SearchProfile` is an opt-in, per-query record of *why* a match run
/// cost what it cost: wall time per pipeline stage, per-filter prune counts
/// during CS construction, and per-cause prune counts plus a search-tree
/// depth histogram during backtracking. All instrumentation sites are
/// null-checked, so a run with no profile attached pays only an untaken
/// branch per event and produces bit-identical results (embeddings,
/// recursive calls) to an uninstrumented build.
///
/// The structs here are plain counters with no dependency on the engine
/// types; `daf/` modules depend on this header, never the reverse. JSON
/// serialization lives in obs/json.h.

/// One DAG-graph DP refinement pass over the candidate sets
/// (CandidateSpace::Build, Recurrence (1) of the paper).
struct CsPassStats {
  uint32_t pass = 0;          // 0-based pass index
  bool reversed_dag = false;  // true = the pass walked q_D^{-1}
  uint64_t removed = 0;       // candidates removed by this pass
  double ms = 0;              // wall time of the pass
};

/// Prune counters and stage timers of CandidateSpace::Build.
struct CsProfile {
  // Seeding: label-matched (query vertex, data vertex) pairs examined and
  // how each local filter disposed of them.
  uint64_t seed_considered = 0;
  uint64_t degree_rejected = 0;
  uint64_t mnd_rejected = 0;   // maximum-neighbor-degree filter
  uint64_t nlf_rejected = 0;   // neighborhood-label-frequency filter
  uint64_t initial_candidates = 0;  // Σ|C_ini(u)| after the local filters

  std::vector<CsPassStats> passes;  // one entry per DP refinement pass
  uint64_t final_candidates = 0;    // Σ|C(u)| after refinement
  uint64_t edges_materialized = 0;  // CS edges N^u_{uc}(v) written

  double seed_ms = 0;    // initial candidate sets + local filters
  double refine_ms = 0;  // all DP passes
  double edges_ms = 0;   // edge materialization

  void Reset() { *this = CsProfile{}; }
};

/// Per-cause prune counters and the depth histogram of one backtracking
/// run (Backtracker::Run). In multi-threaded matches each worker fills its
/// own instance; see BacktrackProfile::MergeFrom.
struct BacktrackProfile {
  /// Emptyset-class leaves: the selected extendable vertex had no
  /// extendable candidates (C_M(u) = ∅).
  uint64_t empty_candidate_prunes = 0;
  /// Conflict-class leaves: the candidate data vertex was already mapped
  /// to another query vertex (injectivity conflict).
  uint64_t conflict_prunes = 0;
  /// Sibling candidates skipped by failing-set pruning (Lemma 6.1 /
  /// Case 2.1: the failing set of a child excluded the current vertex).
  uint64_t failing_set_skips = 0;
  /// Candidates skipped by the DAF-Boost equivalence rule (a candidate
  /// equivalent to an exhausted, embedding-free sibling).
  uint64_t boost_skips = 0;

  /// Kernel-selection counters of the extendable-candidate intersections
  /// (util/intersect.h dispatch): how many intersections ran the scalar
  /// merge, the galloping probe, an SSE/AVX2 shuffle kernel, or the
  /// blocked-bitmap k-way pass. Their sum is the number of kernel
  /// invocations, not of ComputeExtendableCandidates calls (a k-way fold
  /// counts one kernel per pair).
  uint64_t intersect_merge = 0;
  uint64_t intersect_gallop = 0;
  uint64_t intersect_simd = 0;
  uint64_t intersect_bitmap = 0;

  /// Deepest search-tree node examined (0 = only the root call ran).
  uint64_t peak_depth = 0;
  /// depth_histogram[d] = search-tree nodes examined at depth d. Conflict
  /// leaves count at the depth they would have been expanded at, so
  /// HistogramTotal() == BacktrackStats::recursive_calls always holds.
  std::vector<uint64_t> depth_histogram;

  uint64_t HistogramTotal() const;

  /// Accumulates `other` into this profile: counters add, histograms add
  /// element-wise (resizing to the longer one), peak depth takes the max.
  void MergeFrom(const BacktrackProfile& other);

  void Reset() { *this = BacktrackProfile{}; }
};

/// Arena/allocation counters of the MatchContext a run executed in
/// (mirrored from daf::ArenaStats after the run). `arena_blocks_acquired`
/// is the number of system allocations the context's arena performed for
/// this run — 0 on the second and every later run with a warm context (the
/// zero-steady-state-allocation contract of MatchContext reuse).
struct MemoryProfile {
  uint64_t arena_bytes = 0;            // bytes of flat CS/weight arrays
  uint64_t arena_peak_bytes = 0;       // high-water over the context's life
  uint64_t arena_blocks_acquired = 0;  // system allocations this run
  uint64_t arena_capacity_bytes = 0;   // capacity retained by the context

  // Budget ledger of the run (all zero when MatchOptions::memory_budget was
  // not set). `budget_exhausted` records that the run hit its limit — the
  // JSON counterpart of MatchResult::resource_exhausted.
  uint64_t budget_limit_bytes = 0;  // per-job limit (0 = unlimited)
  uint64_t budget_used_bytes = 0;   // bytes still charged at run end
  uint64_t budget_peak_bytes = 0;   // high-water across the run
  uint64_t budget_rejections = 0;   // charges that found the budget over
  bool budget_exhausted = false;

  void Reset() { *this = MemoryProfile{}; }
};

/// Scheduler counters of one multi-threaded run (work-stealing engine;
/// all-zero under the root-cursor strategy and in single-threaded runs).
/// `call_imbalance` is max/mean recursive calls across workers — 1.0 is a
/// perfect split, `threads` means one worker did all the work (the skew
/// failure mode root-candidate partitioning cannot fix).
struct ParallelProfile {
  uint64_t tasks_executed = 0;  // subtree tasks run (seed + donations)
  uint64_t steals = 0;          // tasks taken from another worker's deque
  uint64_t local_steals = 0;    // ... from a same-socket victim
  uint64_t remote_steals = 0;   // ... from a victim on another socket
  uint64_t donations = 0;       // ranges split off for hungry workers
  double idle_ms = 0;           // summed worker time spent waiting for work
  double call_imbalance = 0;    // max/mean per-thread recursive calls
  bool pinned = false;          // workers were pinned to cpus (PinPlan)
  std::vector<uint64_t> per_thread_calls;
  std::vector<uint64_t> per_thread_steals;

  void Reset() { *this = ParallelProfile{}; }
};

/// A sampled point-in-time view of a running search, delivered through the
/// low-overhead progress hook (see ProgressFn in MatchOptions /
/// BacktrackOptions). Sampling piggybacks on the deadline-check countdown
/// (one check every 4096 recursive calls), so an attached hook costs the
/// same as an armed deadline.
struct ProgressSnapshot {
  uint64_t embeddings = 0;       // found so far by the reporting worker
  uint64_t recursive_calls = 0;  // examined so far by the reporting worker
  double elapsed_ms = 0;         // since the worker's search started
  double embeddings_per_sec = 0;
  uint32_t thread = 0;  // reporting worker (0 in single-threaded runs)
};

using ProgressFn = std::function<void(const ProgressSnapshot&)>;

/// The full per-query profile threaded through DafMatch/ParallelDafMatch
/// via `MatchOptions::profile`. Reset at the start of every run it is
/// attached to.
struct SearchProfile {
  // Stage wall times (milliseconds).
  double dag_build_ms = 0;  // QueryDag::Build
  double cs_build_ms = 0;   // CandidateSpace::Build (== cs stage timers' sum)
  double weights_ms = 0;    // WeightArray::Compute (0 under kCandidateSize)
  double search_ms = 0;     // backtracking (all workers, wall time)

  CsProfile cs;
  /// Arena counters of the run's MatchContext (always filled — one-shot
  /// DafMatch calls run in a private context).
  MemoryProfile memory;
  /// Backtracking counters; in parallel runs this is the merge of every
  /// worker's profile.
  BacktrackProfile backtrack;
  /// Per-worker profiles; populated by ParallelDafMatch only.
  std::vector<BacktrackProfile> thread_profiles;
  /// Scheduler balance counters; populated by ParallelDafMatch only.
  ParallelProfile parallel;
  uint32_t threads = 1;

  void Reset();
};

}  // namespace daf::obs

#endif  // DAF_OBS_METRICS_H_

#ifndef DAF_OBS_JSON_H_
#define DAF_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace daf {
struct MatchResult;  // daf/engine.h
}

namespace daf::obs {

/// A dependency-free streaming JSON writer: pretty-printed, UTF-8
/// passthrough with standard escaping, comma/indent bookkeeping handled by
/// a container stack. Misuse (e.g. a value with no pending key inside an
/// object) is a programming error and is tolerated rather than checked —
/// the writer always produces *something*, callers are expected to drive
/// it correctly. Typical use:
///
///   JsonWriter w;
///   w.BeginObject().Key("embeddings").Uint(42).EndObject();
///   puts(w.str().c_str());
class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 = compact single-line output.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);  // non-finite values serialize as null
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The document produced so far.
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();
  void NewlineIndent();
  void AppendEscaped(std::string_view s);

  std::string out_;
  int indent_;
  // One entry per open container: the number of elements emitted so far.
  std::vector<uint64_t> counts_;
  bool pending_key_ = false;
};

/// Serializes a SearchProfile as a standalone JSON document.
std::string ProfileToJson(const SearchProfile& profile, int indent = 2);

/// Serializes a MatchResult (and, when non-null, its SearchProfile under a
/// "profile" key) as a standalone JSON document.
std::string MatchResultToJson(const MatchResult& result,
                              const SearchProfile* profile = nullptr,
                              int indent = 2);

/// Emits `profile` as an object value at the writer's current position
/// (after a Key() inside an object, or as an array element).
void WriteProfile(JsonWriter& w, const SearchProfile& profile);

/// Emits `result` as an object value at the writer's current position.
void WriteMatchResult(JsonWriter& w, const MatchResult& result);

}  // namespace daf::obs

#endif  // DAF_OBS_JSON_H_

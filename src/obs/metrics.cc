#include "obs/metrics.h"

#include <algorithm>

namespace daf::obs {

uint64_t BacktrackProfile::HistogramTotal() const {
  uint64_t total = 0;
  for (uint64_t c : depth_histogram) total += c;
  return total;
}

void BacktrackProfile::MergeFrom(const BacktrackProfile& other) {
  empty_candidate_prunes += other.empty_candidate_prunes;
  conflict_prunes += other.conflict_prunes;
  failing_set_skips += other.failing_set_skips;
  boost_skips += other.boost_skips;
  intersect_merge += other.intersect_merge;
  intersect_gallop += other.intersect_gallop;
  intersect_simd += other.intersect_simd;
  intersect_bitmap += other.intersect_bitmap;
  peak_depth = std::max(peak_depth, other.peak_depth);
  if (depth_histogram.size() < other.depth_histogram.size()) {
    depth_histogram.resize(other.depth_histogram.size(), 0);
  }
  for (size_t d = 0; d < other.depth_histogram.size(); ++d) {
    depth_histogram[d] += other.depth_histogram[d];
  }
}

void SearchProfile::Reset() {
  dag_build_ms = 0;
  cs_build_ms = 0;
  weights_ms = 0;
  search_ms = 0;
  cs.Reset();
  memory.Reset();
  backtrack.Reset();
  thread_profiles.clear();
  parallel.Reset();
  threads = 1;
}

}  // namespace daf::obs

#include "obs/json.h"

#include <cmath>
#include <cstdio>

#include "daf/engine.h"

namespace daf::obs {

void JsonWriter::NewlineIndent() {
  if (indent_ <= 0) return;
  out_.push_back('\n');
  out_.append(counts_.size() * static_cast<size_t>(indent_), ' ');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already placed the comma and indentation
  }
  if (!counts_.empty()) {
    if (counts_.back() > 0) out_.push_back(',');
    ++counts_.back();
    NewlineIndent();
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  bool empty = counts_.empty() || counts_.back() == 0;
  if (!counts_.empty()) counts_.pop_back();
  if (!empty) NewlineIndent();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  bool empty = counts_.empty() || counts_.back() == 0;
  if (!counts_.empty()) counts_.pop_back();
  if (!empty) NewlineIndent();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!counts_.empty()) {
    if (counts_.back() > 0) out_.push_back(',');
    ++counts_.back();
    NewlineIndent();
  }
  out_.push_back('"');
  AppendEscaped(key);
  out_.append(indent_ > 0 ? "\": " : "\":");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_.push_back('"');
  AppendEscaped(value);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_.append("null");
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out_.append(buf);
  // "%g" may print an integral double without a decimal point; that is
  // still valid JSON, so it is left as-is.
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_.append("null");
  return *this;
}

void JsonWriter::AppendEscaped(std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out_.append("\\\"");
        break;
      case '\\':
        out_.append("\\\\");
        break;
      case '\n':
        out_.append("\\n");
        break;
      case '\r':
        out_.append("\\r");
        break;
      case '\t':
        out_.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_.append(buf);
        } else {
          out_.push_back(c);
        }
    }
  }
}

namespace {

void WriteBacktrackProfile(JsonWriter& w, const BacktrackProfile& bt) {
  w.BeginObject();
  w.Key("empty_candidate_prunes").Uint(bt.empty_candidate_prunes);
  w.Key("conflict_prunes").Uint(bt.conflict_prunes);
  w.Key("failing_set_skips").Uint(bt.failing_set_skips);
  w.Key("boost_skips").Uint(bt.boost_skips);
  w.Key("intersect_merge").Uint(bt.intersect_merge);
  w.Key("intersect_gallop").Uint(bt.intersect_gallop);
  w.Key("intersect_simd").Uint(bt.intersect_simd);
  w.Key("intersect_bitmap").Uint(bt.intersect_bitmap);
  w.Key("peak_depth").Uint(bt.peak_depth);
  w.Key("depth_histogram").BeginArray();
  for (uint64_t c : bt.depth_histogram) w.Uint(c);
  w.EndArray();
  w.EndObject();
}

void WriteCsProfile(JsonWriter& w, const CsProfile& cs) {
  w.BeginObject();
  w.Key("seed_considered").Uint(cs.seed_considered);
  w.Key("degree_rejected").Uint(cs.degree_rejected);
  w.Key("mnd_rejected").Uint(cs.mnd_rejected);
  w.Key("nlf_rejected").Uint(cs.nlf_rejected);
  w.Key("initial_candidates").Uint(cs.initial_candidates);
  w.Key("final_candidates").Uint(cs.final_candidates);
  w.Key("edges_materialized").Uint(cs.edges_materialized);
  w.Key("seed_ms").Double(cs.seed_ms);
  w.Key("refine_ms").Double(cs.refine_ms);
  w.Key("edges_ms").Double(cs.edges_ms);
  w.Key("passes").BeginArray();
  for (const CsPassStats& p : cs.passes) {
    w.BeginObject();
    w.Key("pass").Uint(p.pass);
    w.Key("reversed_dag").Bool(p.reversed_dag);
    w.Key("removed").Uint(p.removed);
    w.Key("ms").Double(p.ms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

}  // namespace

void WriteProfile(JsonWriter& w, const SearchProfile& profile) {
  w.BeginObject();
  w.Key("stages").BeginObject();
  w.Key("dag_build_ms").Double(profile.dag_build_ms);
  w.Key("cs_build_ms").Double(profile.cs_build_ms);
  w.Key("weights_ms").Double(profile.weights_ms);
  w.Key("search_ms").Double(profile.search_ms);
  w.EndObject();
  w.Key("cs");
  WriteCsProfile(w, profile.cs);
  w.Key("memory").BeginObject();
  w.Key("arena_bytes").Uint(profile.memory.arena_bytes);
  w.Key("arena_peak_bytes").Uint(profile.memory.arena_peak_bytes);
  w.Key("arena_blocks_acquired").Uint(profile.memory.arena_blocks_acquired);
  w.Key("arena_capacity_bytes").Uint(profile.memory.arena_capacity_bytes);
  w.Key("budget_limit_bytes").Uint(profile.memory.budget_limit_bytes);
  w.Key("budget_used_bytes").Uint(profile.memory.budget_used_bytes);
  w.Key("budget_peak_bytes").Uint(profile.memory.budget_peak_bytes);
  w.Key("budget_rejections").Uint(profile.memory.budget_rejections);
  w.Key("budget_exhausted").Bool(profile.memory.budget_exhausted);
  w.EndObject();
  w.Key("backtrack");
  WriteBacktrackProfile(w, profile.backtrack);
  w.Key("threads").Uint(profile.threads);
  if (profile.threads > 1 || profile.parallel.tasks_executed > 0) {
    const ParallelProfile& par = profile.parallel;
    w.Key("parallel").BeginObject();
    w.Key("tasks_executed").Uint(par.tasks_executed);
    w.Key("steals").Uint(par.steals);
    w.Key("local_steals").Uint(par.local_steals);
    w.Key("remote_steals").Uint(par.remote_steals);
    w.Key("donations").Uint(par.donations);
    w.Key("idle_ms").Double(par.idle_ms);
    w.Key("call_imbalance").Double(par.call_imbalance);
    w.Key("pinned").Bool(par.pinned);
    w.Key("per_thread_calls").BeginArray();
    for (uint64_t c : par.per_thread_calls) w.Uint(c);
    w.EndArray();
    w.Key("per_thread_steals").BeginArray();
    for (uint64_t c : par.per_thread_steals) w.Uint(c);
    w.EndArray();
    w.EndObject();
  }
  if (!profile.thread_profiles.empty()) {
    w.Key("thread_profiles").BeginArray();
    for (const BacktrackProfile& t : profile.thread_profiles) {
      WriteBacktrackProfile(w, t);
    }
    w.EndArray();
  }
  w.EndObject();
}

void WriteMatchResult(JsonWriter& w, const MatchResult& result) {
  w.BeginObject();
  w.Key("ok").Bool(result.ok);
  if (!result.error.empty()) w.Key("error").String(result.error);
  w.Key("embeddings").Uint(result.embeddings);
  w.Key("recursive_calls").Uint(result.recursive_calls);
  w.Key("limit_reached").Bool(result.limit_reached);
  w.Key("timed_out").Bool(result.timed_out);
  w.Key("cancelled").Bool(result.cancelled);
  w.Key("resource_exhausted").Bool(result.resource_exhausted);
  w.Key("cs_certified_negative").Bool(result.cs_certified_negative);
  w.Key("preprocess_ms").Double(result.preprocess_ms);
  w.Key("search_ms").Double(result.search_ms);
  w.Key("cs_candidates").Uint(result.cs_candidates);
  w.Key("cs_edges").Uint(result.cs_edges);
  w.EndObject();
}

std::string ProfileToJson(const SearchProfile& profile, int indent) {
  JsonWriter w(indent);
  WriteProfile(w, profile);
  return w.str();
}

std::string MatchResultToJson(const MatchResult& result,
                              const SearchProfile* profile, int indent) {
  JsonWriter w(indent);
  w.BeginObject();
  w.Key("result");
  WriteMatchResult(w, result);
  if (profile != nullptr) {
    w.Key("profile");
    WriteProfile(w, *profile);
  }
  w.EndObject();
  return w.str();
}

}  // namespace daf::obs

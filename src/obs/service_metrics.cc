#include "obs/service_metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"

namespace daf::obs {

namespace {

// Bucket index of a sample: bucket 0 holds everything <= 1 µs, bucket i
// holds (2^{i-1}, 2^i] µs, the last bucket absorbs the tail.
int BucketIndex(double ms) {
  if (ms <= 0.001) return 0;
  const int idx = static_cast<int>(std::ceil(std::log2(ms / 0.001)));
  return std::min(idx, LatencyHistogram::kNumBuckets - 1);
}

}  // namespace

double LatencyHistogram::BucketUpperBound(int i) {
  return 0.001 * std::ldexp(1.0, i);
}

void LatencyHistogram::Record(double ms) {
  if (ms < 0) ms = 0;
  ++buckets_[BucketIndex(ms)];
  if (count_ == 0 || ms < min_ms_) min_ms_ = ms;
  if (ms > max_ms_) max_ms_ = ms;
  sum_ms_ += ms;
  ++count_;
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ms_ < min_ms_) min_ms_ = other.min_ms_;
  max_ms_ = std::max(max_ms_, other.max_ms_);
  sum_ms_ += other.sum_ms_;
  count_ += other.count_;
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = static_cast<uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count_))));
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      return std::min(BucketUpperBound(i), max_ms_);
    }
  }
  return max_ms_;
}

namespace {

void WriteHistogram(JsonWriter& w, const LatencyHistogram& h) {
  w.BeginObject();
  w.Key("count").Uint(h.count());
  w.Key("min_ms").Double(h.min_ms());
  w.Key("mean_ms").Double(h.mean_ms());
  w.Key("max_ms").Double(h.max_ms());
  w.Key("p50_ms").Double(h.Quantile(0.50));
  w.Key("p90_ms").Double(h.Quantile(0.90));
  w.Key("p95_ms").Double(h.Quantile(0.95));
  w.Key("p99_ms").Double(h.Quantile(0.99));
  w.EndObject();
}

}  // namespace

void WriteServiceMetrics(JsonWriter& w, const ServiceMetricsSnapshot& m) {
  w.BeginObject();
  w.Key("counters").BeginObject();
  w.Key("submitted").Uint(m.counters.submitted);
  w.Key("rejected").Uint(m.counters.rejected);
  w.Key("completed").Uint(m.counters.completed);
  w.Key("cancelled").Uint(m.counters.cancelled);
  w.Key("timed_out").Uint(m.counters.timed_out);
  w.Key("failed").Uint(m.counters.failed);
  w.Key("resource_exhausted").Uint(m.counters.resource_exhausted);
  w.Key("parallel_jobs").Uint(m.counters.parallel_jobs);
  w.EndObject();
  w.Key("queue_depth").Uint(m.queue_depth);
  w.Key("running").Uint(m.running);
  w.Key("workers").Uint(m.workers);
  w.Key("embeddings_streamed").Uint(m.embeddings_streamed);
  w.Key("resources").BeginObject();
  w.Key("watchdog_fires").Uint(m.watchdog_fires);
  w.Key("budget_rejections").Uint(m.budget_rejections);
  w.Key("peak_job_bytes").Uint(m.peak_job_bytes);
  w.Key("global_memory_used").Uint(m.global_memory_used);
  w.Key("global_memory_limit").Uint(m.global_memory_limit);
  w.Key("pool_peak_in_use").Uint(m.pool_peak_in_use);
  w.Key("pool_capacity").Uint(m.pool_capacity);
  w.Key("pool_sockets").Uint(m.pool_sockets);
  w.Key("pool_local_leases").Uint(m.pool_local_leases);
  w.Key("pool_remote_leases").Uint(m.pool_remote_leases);
  w.EndObject();
  w.Key("cache").BeginObject();
  w.Key("enabled").Bool(m.cache_enabled);
  w.Key("cache_lookups").Uint(m.cache_lookups);
  w.Key("cache_hits").Uint(m.cache_hits);
  w.Key("cache_misses").Uint(m.cache_misses);
  w.Key("cache_coalesced").Uint(m.cache_coalesced);
  w.Key("cache_evictions").Uint(m.cache_evictions);
  w.Key("cache_insert_failures").Uint(m.cache_insert_failures);
  w.Key("cache_uncacheable").Uint(m.cache_uncacheable);
  w.Key("cache_resident_bytes").Uint(m.cache_resident_bytes);
  w.Key("cache_entries").Uint(m.cache_entries);
  w.EndObject();
  w.Key("dynamic").BeginObject();
  w.Key("graph_version").Uint(m.graph_version);
  w.Key("batches_applied").Uint(m.dyn_batches_applied);
  w.Key("batches_rejected").Uint(m.dyn_batches_rejected);
  w.Key("cs_incremental").Uint(m.dyn_cs_incremental);
  w.Key("cs_rebuilds").Uint(m.dyn_cs_rebuilds);
  w.Key("dirty_pairs").Uint(m.dyn_dirty_pairs);
  w.Key("peak_dirty_pairs").Uint(m.dyn_peak_dirty_pairs);
  w.Key("embeddings_created").Uint(m.dyn_embeddings_created);
  w.Key("embeddings_destroyed").Uint(m.dyn_embeddings_destroyed);
  w.Key("active_subscriptions").Uint(m.dyn_active_subscriptions);
  w.Key("resyncs").Uint(m.dyn_resyncs);
  w.Key("notify_latency");
  WriteHistogram(w, m.notify);
  w.EndObject();
  w.Key("persist").BeginObject();
  w.Key("enabled").Bool(m.persist_enabled);
  w.Key("wal_bytes").Uint(m.persist_wal_bytes);
  w.Key("wal_appended_batches").Uint(m.persist_wal_appended_batches);
  w.Key("wal_fsyncs").Uint(m.persist_wal_fsyncs);
  w.Key("snapshots_written").Uint(m.persist_snapshots_written);
  w.Key("persist_errors").Uint(m.persist_errors);
  w.Key("failed").Bool(m.persist_failed);
  w.Key("last_snapshot_ms").Double(m.persist_last_snapshot_ms);
  w.Key("recovery").BeginObject();
  w.Key("recovered").Bool(m.persist_recovered);
  w.Key("snapshot_version").Uint(m.persist_recovery_snapshot_version);
  w.Key("wal_records_replayed").Uint(m.persist_recovery_wal_replayed);
  w.Key("wal_truncated_bytes").Uint(m.persist_recovery_wal_truncated_bytes);
  w.Key("recovery_ms").Double(m.persist_recovery_ms);
  w.EndObject();
  w.EndObject();
  w.Key("wait_latency");
  WriteHistogram(w, m.wait);
  w.Key("run_latency");
  WriteHistogram(w, m.run);
  w.Key("total_latency");
  WriteHistogram(w, m.total);
  w.EndObject();
}

std::string ServiceMetricsToJson(const ServiceMetricsSnapshot& m,
                                 int indent) {
  JsonWriter w(indent);
  WriteServiceMetrics(w, m);
  return w.str();
}

}  // namespace daf::obs

#ifndef DAF_OBS_SERVICE_METRICS_H_
#define DAF_OBS_SERVICE_METRICS_H_

#include <array>
#include <cstdint>
#include <string>

namespace daf::obs {

class JsonWriter;  // obs/json.h

/// A fixed-size log-scale latency histogram (base-2 buckets from 1 µs to
/// ~78 hours) plus exact min/max/sum. Plain value type: the owner (e.g.
/// MatchService) guards concurrent Record calls with its own lock and hands
/// out copies as snapshots. Quantiles are resolved to a bucket's upper
/// bound, clamped to the exact observed max, so reported percentiles never
/// exceed the true maximum and are at most one power of two coarse.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 48;

  /// Records one latency sample (milliseconds; negatives clamp to 0).
  void Record(double ms);

  /// Merges another histogram into this one.
  void MergeFrom(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  double sum_ms() const { return sum_ms_; }
  double min_ms() const { return count_ == 0 ? 0 : min_ms_; }
  double max_ms() const { return max_ms_; }
  double mean_ms() const {
    return count_ == 0 ? 0 : sum_ms_ / static_cast<double>(count_);
  }

  /// The latency bound below which a `q` fraction of samples fall
  /// (q in [0, 1]); 0 when empty.
  double Quantile(double q) const;

  /// Upper bound (ms) of bucket i: 0.001 * 2^i.
  static double BucketUpperBound(int i);

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  double sum_ms_ = 0;
  double min_ms_ = 0;
  double max_ms_ = 0;
};

/// Monotonic per-outcome job counters of a MatchService. `submitted` counts
/// every Submit call; each job eventually lands in exactly one of the
/// terminal counters (rejected jobs never enter the queue).
struct ServiceCounters {
  uint64_t submitted = 0;
  uint64_t rejected = 0;   // admission-queue overflow or shutdown
  uint64_t completed = 0;  // ran to a normal MatchResult (incl. limit hits)
  uint64_t cancelled = 0;  // cancel observed while queued or mid-search
  uint64_t timed_out = 0;  // per-job deadline expired (queued or running)
  uint64_t failed = 0;     // the engine reported an error
  uint64_t resource_exhausted = 0;  // per-job memory budget exhausted
  /// Jobs run through the intra-query parallel engine (interactive-priority
  /// jobs when ServiceOptions::intra_query_threads > 1). Not a terminal
  /// outcome — such a job also lands in one of the counters above.
  uint64_t parallel_jobs = 0;
};

/// A point-in-time copy of a MatchService's metrics: cheap to take (one
/// lock, plain copies) and safe to read after the service is gone.
struct ServiceMetricsSnapshot {
  ServiceCounters counters;
  uint64_t queue_depth = 0;   // jobs admitted but not yet picked up
  uint32_t running = 0;       // jobs currently on a worker
  uint32_t workers = 0;       // worker-pool size
  uint64_t embeddings_streamed = 0;  // embeddings delivered through handles
  // Resource governance (see docs/ROBUSTNESS.md).
  uint64_t watchdog_fires = 0;      // jobs force-cancelled past grace
  uint64_t budget_rejections = 0;   // over-limit charges across all jobs
  uint64_t peak_job_bytes = 0;      // largest per-job budget high-water
  uint64_t global_memory_used = 0;  // service-global ledger right now
  uint64_t global_memory_limit = 0; // service-global limit (0 = unlimited)
  uint32_t pool_peak_in_use = 0;    // context-pool high-water mark
  uint32_t pool_capacity = 0;       // context-pool size
  uint32_t pool_sockets = 0;        // sockets the free lists span
  uint64_t pool_local_leases = 0;   // leases served from the local socket
  uint64_t pool_remote_leases = 0;  // leases that spilled cross-socket
  // Cross-query plan/CS cache (all zero when cache_enabled is false). The
  // classification invariant hits + misses + coalesced == lookups holds in
  // every snapshot.
  bool cache_enabled = false;
  uint64_t cache_lookups = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_coalesced = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_insert_failures = 0;
  uint64_t cache_uncacheable = 0;
  uint64_t cache_resident_bytes = 0;
  uint64_t cache_entries = 0;
  // Dynamic-graph subsystem (docs/DYNAMIC.md); all zero until the first
  // ApplyUpdates or Subscribe.
  uint64_t graph_version = 0;         // update batches applied (graph is v0)
  uint64_t dyn_batches_applied = 0;   // successful ApplyUpdates calls
  uint64_t dyn_batches_rejected = 0;  // invalid batches / injected faults
  uint64_t dyn_cs_incremental = 0;    // per-subscription incremental passes
  uint64_t dyn_cs_rebuilds = 0;       // full-rebuild fallbacks
  uint64_t dyn_dirty_pairs = 0;       // total dirty (u, v) pairs maintained
  uint64_t dyn_peak_dirty_pairs = 0;  // largest single maintenance pass
  uint64_t dyn_embeddings_created = 0;    // deltas streamed, positive
  uint64_t dyn_embeddings_destroyed = 0;  // deltas streamed, negative
  uint64_t dyn_active_subscriptions = 0;  // standing queries right now
  uint64_t dyn_resyncs = 0;  // notifications degraded to resync markers
  // Durable state (docs/PERSISTENCE.md); all zero when persist_enabled is
  // false (memory-only service).
  bool persist_enabled = false;
  uint64_t persist_wal_bytes = 0;  // bytes in the active WAL segment
  uint64_t persist_wal_appended_batches = 0;  // batches logged since open
  uint64_t persist_wal_fsyncs = 0;
  uint64_t persist_snapshots_written = 0;  // checkpoints (incl. the seed)
  uint64_t persist_errors = 0;             // non-fatal IO errors
  bool persist_failed = false;             // fail-stop latch tripped
  double persist_last_snapshot_ms = 0;     // wall time of the last checkpoint
  bool persist_recovered = false;          // prior state restored at open
  uint64_t persist_recovery_snapshot_version = 0;
  uint64_t persist_recovery_wal_replayed = 0;
  uint64_t persist_recovery_wal_truncated_bytes = 0;
  double persist_recovery_ms = 0;
  LatencyHistogram wait;   // submission -> worker pickup
  LatencyHistogram run;    // worker pickup -> terminal state
  LatencyHistogram total;  // submission -> terminal state
  LatencyHistogram notify;  // per-subscription delta notification latency
};

/// Emits a snapshot as an object value at the writer's current position.
void WriteServiceMetrics(JsonWriter& w, const ServiceMetricsSnapshot& m);

/// Serializes a snapshot as a standalone JSON document.
std::string ServiceMetricsToJson(const ServiceMetricsSnapshot& m,
                                 int indent = 2);

}  // namespace daf::obs

#endif  // DAF_OBS_SERVICE_METRICS_H_

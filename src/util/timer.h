#ifndef DAF_UTIL_TIMER_H_
#define DAF_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace daf {

/// Wall-clock stopwatch over std::chrono::steady_clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction or the last Restart().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock deadline used to cut off hard query instances (the paper uses
/// a 10-minute limit per query). A deadline of 0 ms means "no limit".
class Deadline {
 public:
  /// Creates a deadline `timeout_ms` from now; 0 disables the deadline.
  explicit Deadline(uint64_t timeout_ms = 0) {
    if (timeout_ms > 0) {
      deadline_ = Clock::now() + std::chrono::milliseconds(timeout_ms);
      enabled_ = true;
    }
  }

  /// True if the deadline is enabled and has passed.
  bool Expired() const { return enabled_ && Clock::now() >= deadline_; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point deadline_;
  bool enabled_ = false;
};

}  // namespace daf

#endif  // DAF_UTIL_TIMER_H_

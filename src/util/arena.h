#ifndef DAF_UTIL_ARENA_H_
#define DAF_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/memory_budget.h"

namespace daf {

/// Allocation counters of an Arena. `bytes_used` and `blocks_acquired`
/// describe the current epoch (since the last Reset); the rest describe the
/// arena's whole lifetime. A warmed-up arena serving a workload it has seen
/// before reports blocks_acquired == 0 — the "zero steady-state
/// allocations" property the match engine relies on (see
/// docs/PERFORMANCE.md).
struct ArenaStats {
  uint64_t bytes_used = 0;       // bytes handed out since the last Reset
  uint64_t blocks_acquired = 0;  // system blocks acquired since the last Reset
  uint64_t peak_bytes = 0;       // max bytes_used over any epoch so far
  uint64_t capacity_bytes = 0;   // total block capacity currently retained
};

/// A bump (monotonic) arena: allocations advance a pointer within
/// geometrically growing blocks; `Reset` recycles all blocks at once without
/// returning them to the system. There is no per-object deallocation, so
/// only trivially destructible types may live in it.
///
/// The match engine uses one arena per MatchContext to hold the flat
/// candidate-space arrays and the weight array of a query: construction
/// writes each array exactly once, the whole structure dies at the next
/// Reset, and after the first few queries the retained blocks absorb every
/// request — steady state performs no heap allocation at all.
class Arena {
 public:
  /// `first_block_bytes` sizes the first block acquired (later blocks grow
  /// geometrically). No memory is acquired until the first allocation.
  explicit Arena(size_t first_block_bytes = kDefaultFirstBlockBytes)
      : next_block_bytes_(first_block_bytes < kMinBlockBytes
                              ? kMinBlockBytes
                              : first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() { SetBudget(nullptr); }

  /// Attaches (or detaches, with nullptr) a MemoryBudget charged by block
  /// *capacity*: the retained capacity is charged immediately — a warm arena
  /// counts against the job leasing it — every block acquired afterwards
  /// charges its capacity, and detaching (or destruction) uncharges it all.
  /// Charging is soft (see MemoryBudget): acquisition never fails, but an
  /// over-limit charge latches the budget's exhausted flag for the engine's
  /// StopCondition to observe.
  void SetBudget(MemoryBudget* budget) {
    if (budget_ != nullptr) budget_->Uncharge(stats_.capacity_bytes);
    budget_ = budget;
    if (budget_ != nullptr && stats_.capacity_bytes > 0) {
      budget_->Charge(stats_.capacity_bytes);
    }
  }

  /// Drops retained blocks (largest-capacity first) until the retained
  /// capacity is at most `retain_bytes`, uncharging any attached budget.
  /// Call only between epochs (after Reset); live allocations would dangle.
  void ShrinkTo(size_t retain_bytes);

  /// An uninitialized array of `count` Ts, aligned for T, valid until the
  /// next Reset. `count == 0` returns a non-null aligned pointer.
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destructed");
    return static_cast<T*>(AllocateBytes(count * sizeof(T), alignof(T)));
  }

  /// Raw uninitialized storage; `align` must be a power of two <= 16.
  void* AllocateBytes(size_t bytes, size_t align);

  /// Invalidates every allocation and makes the retained blocks available
  /// again; epoch counters (bytes_used, blocks_acquired) restart at zero.
  void Reset();

  /// Frees all blocks back to the system (Reset plus releasing capacity).
  void Release();

  const ArenaStats& stats() const { return stats_; }

 private:
  static constexpr size_t kDefaultFirstBlockBytes = size_t{1} << 16;
  static constexpr size_t kMinBlockBytes = 256;

  struct Block {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
  };

  // Acquires (or reuses) a block able to hold `bytes` and makes it current.
  void NextBlock(size_t bytes);

  std::vector<Block> blocks_;
  size_t current_ = 0;  // index of the active block (blocks_ may be empty)
  size_t offset_ = 0;   // bump position within the active block
  size_t next_block_bytes_;
  ArenaStats stats_;
  MemoryBudget* budget_ = nullptr;  // not owned; charged by block capacity
};

inline void* Arena::AllocateBytes(size_t bytes, size_t align) {
  if (!blocks_.empty()) {
    size_t aligned = (offset_ + (align - 1)) & ~(align - 1);
    if (aligned + bytes <= blocks_[current_].capacity) {
      offset_ = aligned + bytes;
      stats_.bytes_used += bytes;
      if (stats_.bytes_used > stats_.peak_bytes) {
        stats_.peak_bytes = stats_.bytes_used;
      }
      return blocks_[current_].data.get() + aligned;
    }
  }
  NextBlock(bytes + align);
  size_t aligned = (offset_ + (align - 1)) & ~(align - 1);
  offset_ = aligned + bytes;
  stats_.bytes_used += bytes;
  if (stats_.bytes_used > stats_.peak_bytes) {
    stats_.peak_bytes = stats_.bytes_used;
  }
  return blocks_[current_].data.get() + aligned;
}

}  // namespace daf

#endif  // DAF_UTIL_ARENA_H_

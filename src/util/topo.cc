#include "util/topo.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace daf {
namespace {

// Parses a sysfs file holding a single unsigned integer. Returns false on
// missing files or junk content.
bool ReadUint(const std::filesystem::path& path, uint32_t* out) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  long long value = -1;
  in >> value;
  if (in.fail() || value < 0) return false;
  *out = static_cast<uint32_t>(value);
  return true;
}

uint32_t FallbackCpuCount() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<uint32_t>(hc);
}

}  // namespace

HwTopology HwTopology::Flat(uint32_t num_cpus) {
  HwTopology topo;
  if (num_cpus == 0) num_cpus = 1;
  topo.cpus.resize(num_cpus);
  for (uint32_t i = 0; i < num_cpus; ++i) {
    topo.cpus[i].id = i;
    topo.cpus[i].socket = 0;
    topo.cpus[i].core = i;
  }
  topo.num_sockets = 1;
  topo.num_cores = num_cpus;
  topo.from_sysfs = false;
  return topo;
}

HwTopology HwTopology::FromSysfs(const std::string& root) {
  namespace fs = std::filesystem;
  struct RawCpu {
    uint32_t id, package, core;
  };
  std::vector<RawCpu> raw;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    // Only cpuN directories; skips cpufreq, cpuidle, online, ...
    if (name.size() <= 3 || name.compare(0, 3, "cpu") != 0) continue;
    uint32_t id = 0;
    bool numeric = true;
    for (size_t i = 3; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        numeric = false;
        break;
      }
      id = id * 10 + static_cast<uint32_t>(name[i] - '0');
    }
    if (!numeric) continue;
    // Offline cpus expose an "online" flag of 0 and usually no topology
    // directory; skip them rather than failing the whole parse.
    uint32_t online = 1;
    if (ReadUint(entry.path() / "online", &online) && online == 0) continue;
    RawCpu cpu{id, 0, 0};
    if (!ReadUint(entry.path() / "topology" / "physical_package_id",
                  &cpu.package) ||
        !ReadUint(entry.path() / "topology" / "core_id", &cpu.core)) {
      continue;
    }
    raw.push_back(cpu);
  }
  if (raw.empty()) return Flat(FallbackCpuCount());

  std::sort(raw.begin(), raw.end(),
            [](const RawCpu& a, const RawCpu& b) { return a.id < b.id; });

  // Densely re-map package ids and (package, core) pairs: sysfs values are
  // arbitrary (core_id often restarts per socket, packages can be sparse).
  std::map<uint32_t, uint32_t> socket_of_package;
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> core_of_pair;
  HwTopology topo;
  topo.cpus.reserve(raw.size());
  for (const RawCpu& r : raw) {
    Cpu cpu;
    cpu.id = r.id;
    cpu.socket = socket_of_package
                     .emplace(r.package,
                              static_cast<uint32_t>(socket_of_package.size()))
                     .first->second;
    const auto core_it = core_of_pair.emplace(
        std::make_pair(r.package, r.core),
        static_cast<uint32_t>(core_of_pair.size()));
    cpu.core = core_it.first->second;
    // raw is id-sorted, so the first thread seen on a core is its primary.
    cpu.smt_sibling = !core_it.second;
    topo.cpus.push_back(cpu);
  }
  topo.num_sockets = static_cast<uint32_t>(socket_of_package.size());
  topo.num_cores = static_cast<uint32_t>(core_of_pair.size());
  topo.from_sysfs = true;
  return topo;
}

const HwTopology& HwTopology::Get() {
  static const HwTopology topo = FromSysfs("/sys/devices/system/cpu");
  return topo;
}

uint32_t HwTopology::SocketOfCpu(uint32_t cpu_id) const {
  for (const Cpu& cpu : cpus) {
    if (cpu.id == cpu_id) return cpu.socket;
  }
  return 0;
}

uint32_t HwTopology::CurrentSocket() const {
#if defined(__linux__)
  const int cpu = sched_getcpu();
  if (cpu >= 0) return SocketOfCpu(static_cast<uint32_t>(cpu));
#endif
  return 0;
}

std::vector<uint32_t> HwTopology::PinOrder() const {
  std::vector<const Cpu*> order;
  order.reserve(cpus.size());
  for (const Cpu& cpu : cpus) order.push_back(&cpu);
  std::sort(order.begin(), order.end(), [](const Cpu* a, const Cpu* b) {
    if (a->socket != b->socket) return a->socket < b->socket;
    if (a->smt_sibling != b->smt_sibling) return !a->smt_sibling;
    if (a->core != b->core) return a->core < b->core;
    return a->id < b->id;
  });
  std::vector<uint32_t> ids;
  ids.reserve(order.size());
  for (const Cpu* cpu : order) ids.push_back(cpu->id);
  return ids;
}

PinPlan MakePinPlan(const HwTopology& topo, uint32_t num_workers, bool pin) {
  PinPlan plan;
  plan.cpu.assign(num_workers, -1);
  plan.socket.assign(num_workers, 0);
  if (!pin || topo.cpus.size() <= 1 || num_workers == 0) return plan;
  const std::vector<uint32_t> order = topo.PinOrder();
  plan.active = true;
  for (uint32_t w = 0; w < num_workers; ++w) {
    const uint32_t cpu_id = order[w % order.size()];
    plan.cpu[w] = static_cast<int>(cpu_id);
    plan.socket[w] = topo.SocketOfCpu(cpu_id);
  }
  return plan;
}

bool PinCurrentThreadToCpu(int cpu) {
#if defined(__linux__)
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace daf

#ifndef DAF_UTIL_RNG_H_
#define DAF_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace daf {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). All randomized components of the library (graph generators,
/// query extraction, workload synthesis) take an explicit `Rng` so experiments
/// are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed);

  /// Next 64 raw bits.
  uint64_t NextU64();

  /// Uniform integer in [0, bound); bound must be > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformReal();

  /// Returns true with probability p.
  bool Bernoulli(double p) { return UniformReal() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
};

}  // namespace daf

#endif  // DAF_UTIL_RNG_H_

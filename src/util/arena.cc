#include "util/arena.h"

#include <algorithm>
#include <utility>

namespace daf {

void Arena::NextBlock(size_t bytes) {
  // Prefer a retained block that can hold the request; swap it adjacent to
  // the current one so a replayed allocation sequence walks the same blocks.
  size_t start = blocks_.empty() ? 0 : current_ + 1;
  for (size_t i = start; i < blocks_.size(); ++i) {
    if (blocks_[i].capacity >= bytes) {
      if (i != start) std::swap(blocks_[i], blocks_[start]);
      current_ = start;
      offset_ = 0;
      return;
    }
  }
  size_t capacity = std::max(bytes, next_block_bytes_);
  next_block_bytes_ = capacity * 2;
  Block block;
  block.data = std::unique_ptr<char[]>(new char[capacity]);
  block.capacity = capacity;
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  offset_ = 0;
  ++stats_.blocks_acquired;
  stats_.capacity_bytes += capacity;
}

void Arena::Reset() {
  current_ = 0;
  offset_ = 0;
  stats_.bytes_used = 0;
  stats_.blocks_acquired = 0;
}

void Arena::Release() {
  Reset();
  blocks_.clear();
  stats_.capacity_bytes = 0;
}

}  // namespace daf

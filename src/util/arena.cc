#include "util/arena.h"

#include <algorithm>
#include <utility>

#include "util/fault_inject.h"

namespace daf {

void Arena::NextBlock(size_t bytes) {
  // Prefer a retained block that can hold the request; swap it adjacent to
  // the current one so a replayed allocation sequence walks the same blocks.
  size_t start = blocks_.empty() ? 0 : current_ + 1;
  for (size_t i = start; i < blocks_.size(); ++i) {
    if (blocks_[i].capacity >= bytes) {
      if (i != start) std::swap(blocks_[i], blocks_[start]);
      current_ = start;
      offset_ = 0;
      return;
    }
  }
  size_t capacity = std::max(bytes, next_block_bytes_);
  next_block_bytes_ = capacity * 2;
  Block block;
  block.data = std::unique_ptr<char[]>(new char[capacity]);
  block.capacity = capacity;
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  offset_ = 0;
  ++stats_.blocks_acquired;
  stats_.capacity_bytes += capacity;
  if (budget_ != nullptr) {
    budget_->Charge(capacity);
    // Simulated acquisition failure: the block itself is fine (no partial
    // state to corrupt) but the run is told memory ran out.
    if (FAULT_POINT(arena_block_acquire)) budget_->MarkExhausted();
  }
}

void Arena::ShrinkTo(size_t retain_bytes) {
  // Dropping the largest blocks first frees the most capacity per block and
  // keeps the small early blocks that every epoch touches.
  std::sort(blocks_.begin(), blocks_.end(),
            [](const Block& a, const Block& b) { return a.capacity < b.capacity; });
  while (!blocks_.empty() && stats_.capacity_bytes > retain_bytes) {
    size_t capacity = blocks_.back().capacity;
    blocks_.pop_back();
    stats_.capacity_bytes -= capacity;
    if (budget_ != nullptr) budget_->Uncharge(capacity);
  }
  current_ = 0;
  offset_ = 0;
  // The next miss regrows from the largest retained block upwards instead of
  // re-doubling from the initial size.
  next_block_bytes_ = std::max(
      blocks_.empty() ? size_t{0} : blocks_.back().capacity * 2, kMinBlockBytes);
}

void Arena::Reset() {
  current_ = 0;
  offset_ = 0;
  stats_.bytes_used = 0;
  stats_.blocks_acquired = 0;
}

void Arena::Release() {
  Reset();
  blocks_.clear();
  if (budget_ != nullptr) budget_->Uncharge(stats_.capacity_bytes);
  stats_.capacity_bytes = 0;
}

}  // namespace daf

#include "util/bitset.h"

#include <bit>

namespace daf {

size_t Bitset::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

std::string Bitset::ToString() const {
  std::string s;
  s.reserve(num_bits_);
  for (size_t i = 0; i < num_bits_; ++i) s.push_back(Test(i) ? '1' : '0');
  return s;
}

}  // namespace daf

// Vector intersection kernels and the process-wide SIMD dispatch level.
//
// Both kernels implement the shuffle method: load one block from each input,
// compare all-against-all via register rotations, compact the matched lanes
// of the A block to the front of the output with a precomputed permutation,
// and advance whichever block's maximum is smaller (both when equal). Sorted
// unique inputs make the block-max advance rule exact: a value can only
// match inside the current window, so nothing is missed or duplicated.
//
// The functions carry per-function target attributes instead of building the
// whole library with -mssse3/-mavx2, so the binary stays runnable on any
// x86-64 and the dispatcher picks a tier from cpuid at startup.

#include "util/intersect.h"

#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#define DAF_INTERSECT_X86 1
#include <immintrin.h>
#endif

namespace daf {
namespace intersect_internal {
namespace {

#ifdef DAF_INTERSECT_X86

// kSseShuffle[mask] compacts the 32-bit lanes of an SSE register selected by
// the 4-bit `mask` to the front (byte-level indices for _mm_shuffle_epi8;
// 0x80 zeroes the unused tail).
struct SseTable {
  uint8_t b[16][16];
};

constexpr SseTable MakeSseTable() {
  SseTable t{};
  for (int mask = 0; mask < 16; ++mask) {
    int out = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((mask & (1 << lane)) != 0) {
        for (int byte = 0; byte < 4; ++byte) {
          t.b[mask][out * 4 + byte] = static_cast<uint8_t>(lane * 4 + byte);
        }
        ++out;
      }
    }
    for (int rest = out * 4; rest < 16; ++rest) t.b[mask][rest] = 0x80;
  }
  return t;
}

alignas(16) constexpr SseTable kSseShuffle = MakeSseTable();

// kAvxCompact[mask] holds lane indices for _mm256_permutevar8x32_epi32 that
// move the selected lanes of the 8-bit `mask` to the front. Lanes past the
// popcount are zero; their stored values are dead (the caller only keeps
// `count` elements).
struct AvxTable {
  uint32_t idx[256][8];
};

constexpr AvxTable MakeAvxTable() {
  AvxTable t{};
  for (int mask = 0; mask < 256; ++mask) {
    int out = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if ((mask & (1 << lane)) != 0) {
        t.idx[mask][out++] = static_cast<uint32_t>(lane);
      }
    }
  }
  return t;
}

alignas(32) constexpr AvxTable kAvxCompact = MakeAvxTable();

#endif  // DAF_INTERSECT_X86

// Scalar merge tail shared by both kernels once a block no longer fits.
inline size_t MergeTail(const uint32_t* a, size_t i, size_t na,
                        const uint32_t* b, size_t j, size_t nb, uint32_t* out,
                        size_t count) {
  while (i < na && j < nb) {
    const uint32_t x = a[i], y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      out[count++] = x;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

#ifdef DAF_INTERSECT_X86

bool CpuSupportsSse() { return __builtin_cpu_supports("ssse3") != 0; }
bool CpuSupportsAvx2() { return __builtin_cpu_supports("avx2") != 0; }

__attribute__((target("ssse3"))) size_t IntersectSseKernel(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
    uint32_t* out) {
  size_t i = 0, j = 0, count = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    // Compare the A block against all four rotations of the B block.
    const __m128i r1 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1));
    const __m128i r2 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2));
    const __m128i r3 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3));
    __m128i cmp = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi32(va, vb), _mm_cmpeq_epi32(va, r1)),
        _mm_or_si128(_mm_cmpeq_epi32(va, r2), _mm_cmpeq_epi32(va, r3)));
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(cmp));
    const __m128i shuf = _mm_load_si128(
        reinterpret_cast<const __m128i*>(kSseShuffle.b[mask]));
    // Full-width store; only popcount(mask) lanes are live. The output
    // contract (capacity >= min + kIntersectOutPad, no aliasing) makes the
    // overshoot safe.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + count),
                     _mm_shuffle_epi8(va, shuf));
    count += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(mask)));
    const uint32_t amax = a[i + 3], bmax = b[j + 3];
    i += (amax <= bmax) ? 4 : 0;
    j += (bmax <= amax) ? 4 : 0;
  }
  return MergeTail(a, i, na, b, j, nb, out, count);
}

__attribute__((target("avx2"))) size_t IntersectAvx2Kernel(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
    uint32_t* out) {
  size_t i = 0, j = 0, count = 0;
  if (i + 8 <= na && j + 8 <= nb) {
    // Seven independent rotations of the B block (lane k of rotation r holds
    // b[(k + r) mod 8]), so every A lane meets every B lane once.
    const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    const __m256i rot2 = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
    const __m256i rot3 = _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
    const __m256i rot4 = _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3);
    const __m256i rot5 = _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4);
    const __m256i rot6 = _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5);
    const __m256i rot7 = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
    while (i + 8 <= na && j + 8 <= nb) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      __m256i cmp = _mm256_cmpeq_epi32(va, vb);
      cmp = _mm256_or_si256(
          cmp, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot1)));
      cmp = _mm256_or_si256(
          cmp, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot2)));
      cmp = _mm256_or_si256(
          cmp, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot3)));
      cmp = _mm256_or_si256(
          cmp, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot4)));
      cmp = _mm256_or_si256(
          cmp, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot5)));
      cmp = _mm256_or_si256(
          cmp, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot6)));
      cmp = _mm256_or_si256(
          cmp, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot7)));
      const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(cmp));
      const __m256i perm = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kAvxCompact.idx[mask]));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + count),
                          _mm256_permutevar8x32_epi32(va, perm));
      count += static_cast<size_t>(
          __builtin_popcount(static_cast<unsigned>(mask)));
      const uint32_t amax = a[i + 7], bmax = b[j + 7];
      i += (amax <= bmax) ? 8 : 0;
      j += (bmax <= amax) ? 8 : 0;
    }
  }
  return MergeTail(a, i, na, b, j, nb, out, count);
}

#else  // !DAF_INTERSECT_X86

bool CpuSupportsSse() { return false; }
bool CpuSupportsAvx2() { return false; }

size_t IntersectSseKernel(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb, uint32_t* out) {
  return IntersectMergeKernel(a, na, b, nb, out);
}

size_t IntersectAvx2Kernel(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb, uint32_t* out) {
  return IntersectMergeKernel(a, na, b, nb, out);
}

#endif  // DAF_INTERSECT_X86

}  // namespace intersect_internal

SimdLevel ComputeSimdLevel() {
  // Any non-empty value other than "0" disables the vector kernels — the
  // differential-testing and bisection switch.
  const char* env = std::getenv("DAF_DISABLE_SIMD");
  if (env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0')) {
    return SimdLevel::kNone;
  }
  if (intersect_internal::CpuSupportsAvx2()) return SimdLevel::kAvx2;
  if (intersect_internal::CpuSupportsSse()) return SimdLevel::kSse;
  return SimdLevel::kNone;
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel level = ComputeSimdLevel();
  return level;
}

}  // namespace daf

#ifndef DAF_UTIL_FAULT_INJECT_H_
#define DAF_UTIL_FAULT_INJECT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace daf {

/// Seeded, deterministic fault injection for the chaos test harness.
///
/// Fault *points* are compiled into the production binary permanently and
/// named at the call site:
///
///   if (FAULT_POINT(arena_block_acquire)) {
///     // simulated failure path: behave exactly as if the real resource
///     // acquisition had failed
///   }
///
/// Unarmed (the default, and the only state outside tests/chaos runs) a
/// point costs one relaxed atomic load and an untaken branch — no strings,
/// no locks, no registry lookup. Arming is process-global: a seed plus a
/// per-poll fire probability, applied to every point or to one point by
/// name. The decision for the k-th poll of a point is a pure function of
/// (seed, point name, k), so a fault schedule replays identically across
/// runs, thread interleavings aside.
///
/// `FireNth` arms a one-shot trigger: the point fires exactly on its n-th
/// poll (1-based) and never again — the tool for forcing a specific
/// allocation or donation to fail in a unit test.
///
/// All state is global; tests must Disarm() (or use ScopedFaultInjection)
/// to avoid leaking a schedule into later tests.
class FaultInjector {
 public:
  /// Per-point observation counters (diagnostics / chaos-report JSON).
  struct PointStats {
    std::string name;
    uint64_t polls = 0;
    uint64_t fires = 0;
  };

  /// Arms every fault point with one seeded Bernoulli schedule.
  /// `probability` is clamped to [0, 1].
  static void Arm(uint64_t seed, double probability);

  /// Arms (or re-arms) a single point by name; other points keep their
  /// current schedule (unarmed unless Arm/ArmPoint configured them).
  static void ArmPoint(const std::string& name, uint64_t seed,
                       double probability);

  /// Arms a one-shot trigger: `name` fires exactly on its `nth` poll
  /// (1-based) after this call, then disarms itself.
  static void FireNth(const std::string& name, uint64_t nth);

  /// Arms a one-shot *crash* trigger: on the `nth` poll of `name` after
  /// this call the process raises SIGKILL from inside the poll — no
  /// destructors, no flushes — exactly as if the machine had died at that
  /// instruction. The crash-recovery oracle forks a child, arms a kill on
  /// a persistence fault point (`wal_append`, `snapshot_write`, ...), and
  /// checks what recovery makes of the half-written files left behind.
  static void KillNth(const std::string& name, uint64_t nth);

  /// Disarms everything and clears all counters and schedules.
  static void Disarm();

  /// True while any schedule is active (the hot-path gate).
  static bool armed() {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Polls the point (slow path; only reached while armed). True = the
  /// fault fires and the caller must take its simulated-failure path.
  static bool Fire(const char* name);

  /// Total fires across all points since the last Disarm.
  static uint64_t total_fires();

  /// Per-point poll/fire counts, sorted by name.
  static std::vector<PointStats> Snapshot();

 private:
  static std::atomic<bool> armed_;
};

/// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection(uint64_t seed, double probability) {
    FaultInjector::Arm(seed, probability);
  }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
  ~ScopedFaultInjection() { FaultInjector::Disarm(); }
};

}  // namespace daf

/// Declares a named fault point. Evaluates to true when the armed schedule
/// fires the point for this poll; false (at one relaxed atomic load of
/// cost) otherwise.
#define FAULT_POINT(name) \
  (::daf::FaultInjector::armed() && ::daf::FaultInjector::Fire(#name))

#endif  // DAF_UTIL_FAULT_INJECT_H_

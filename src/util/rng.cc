#include "util/rng.h"

#include <bit>

namespace daf {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& si : s_) si = SplitMix64(x);
}

uint64_t Rng::NextU64() {
  const uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformReal() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  double r = UniformReal() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0) return i;
  }
  return weights.size() - 1;
}

}  // namespace daf

#include "util/fault_inject.h"

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <map>
#include <mutex>

namespace daf {

namespace {

// SplitMix64: the decision for poll k of a point is Mix(seed ^ name-hash
// ^ k) — stateless per poll, so a schedule replays identically.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashName(const char* name) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (; *name != '\0'; ++name) {
    h = (h ^ static_cast<unsigned char>(*name)) * 1099511628211ULL;
  }
  return h;
}

struct Schedule {
  bool active = false;
  uint64_t seed = 0;
  // Fire threshold in [0, 2^64): poll fires iff Mix(...) < threshold.
  uint64_t threshold = 0;
  // One-shot mode: fire exactly on poll `nth` (1-based); 0 = probabilistic.
  uint64_t nth = 0;
  // Crash mode: a fire raises SIGKILL instead of returning true.
  bool kill = false;
};

struct Point {
  Schedule schedule;  // per-point override; falls back to the global one
  bool has_override = false;
  uint64_t polls = 0;
  uint64_t fires = 0;
};

struct Registry {
  std::mutex mutex;
  Schedule global;
  std::map<std::string, Point> points;
  uint64_t total_fires = 0;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: fault state is global
  return *r;
}

uint64_t ProbabilityToThreshold(double probability) {
  probability = std::clamp(probability, 0.0, 1.0);
  if (probability >= 1.0) return ~uint64_t{0};
  return static_cast<uint64_t>(probability * 18446744073709551616.0);
}

}  // namespace

std::atomic<bool> FaultInjector::armed_{false};

void FaultInjector::Arm(uint64_t seed, double probability) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.global.active = true;
  r.global.seed = seed;
  r.global.threshold = ProbabilityToThreshold(probability);
  r.global.nth = 0;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::ArmPoint(const std::string& name, uint64_t seed,
                             double probability) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  Point& p = r.points[name];
  p.has_override = true;
  p.schedule.active = true;
  p.schedule.seed = seed;
  p.schedule.threshold = ProbabilityToThreshold(probability);
  p.schedule.nth = 0;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::FireNth(const std::string& name, uint64_t nth) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  Point& p = r.points[name];
  p.has_override = true;
  p.schedule.active = true;
  p.schedule.seed = 0;
  p.schedule.threshold = 0;
  p.schedule.nth = p.polls + std::max<uint64_t>(nth, 1);
  p.schedule.kill = false;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::KillNth(const std::string& name, uint64_t nth) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  Point& p = r.points[name];
  p.has_override = true;
  p.schedule.active = true;
  p.schedule.seed = 0;
  p.schedule.threshold = 0;
  p.schedule.nth = p.polls + std::max<uint64_t>(nth, 1);
  p.schedule.kill = true;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  armed_.store(false, std::memory_order_release);
  r.global = Schedule{};
  r.points.clear();
  r.total_fires = 0;
}

bool FaultInjector::Fire(const char* name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (!armed_.load(std::memory_order_relaxed)) return false;
  Point& p = r.points[name];
  const uint64_t poll = ++p.polls;
  const Schedule& s = p.has_override ? p.schedule : r.global;
  if (!s.active) return false;
  bool fire;
  if (s.nth != 0) {
    fire = poll == s.nth;
    if (fire) p.schedule.active = false;  // one-shot
  } else {
    fire = Mix(s.seed ^ HashName(name) ^ poll) < s.threshold;
  }
  if (fire) {
    ++p.fires;
    ++r.total_fires;
    if (s.kill) {
#ifdef __unix__
      ::raise(SIGKILL);  // dies holding the registry mutex — by design
#else
      std::abort();
#endif
    }
  }
  return fire;
}

uint64_t FaultInjector::total_fires() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.total_fires;
}

std::vector<FaultInjector::PointStats> FaultInjector::Snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<PointStats> out;
  out.reserve(r.points.size());
  for (const auto& [name, point] : r.points) {
    out.push_back(PointStats{name, point.polls, point.fires});
  }
  return out;
}

}  // namespace daf

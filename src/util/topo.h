#ifndef DAF_UTIL_TOPO_H_
#define DAF_UTIL_TOPO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace daf {

/// Hardware topology: which logical CPUs exist, which socket and physical
/// core each belongs to, and which are SMT siblings. Read once from Linux
/// sysfs (`/sys/devices/system/cpu`); any parse problem degrades to a flat
/// single-socket layout sized by std::thread::hardware_concurrency — the
/// constructors never throw and never return an empty topology.
struct HwTopology {
  struct Cpu {
    uint32_t id = 0;           // kernel logical cpu id (the N of cpuN)
    uint32_t socket = 0;       // dense socket index in [0, num_sockets)
    uint32_t core = 0;         // dense physical-core index in [0, num_cores)
    bool smt_sibling = false;  // not the lowest-id thread of its core
  };

  std::vector<Cpu> cpus;  // sorted by id
  uint32_t num_sockets = 1;
  uint32_t num_cores = 0;
  bool from_sysfs = false;  // true when parsed from a real sysfs tree

  /// A synthetic single-socket topology with `num_cpus` independent cores
  /// (clamped to at least 1). The universal fallback.
  static HwTopology Flat(uint32_t num_cpus);

  /// Parses a sysfs cpu tree (`root` contains cpu0, cpu1, ... directories
  /// with topology/physical_package_id and topology/core_id). Package and
  /// core ids are densely re-mapped; the lowest-id thread of each
  /// (socket, core) pair is the primary, later ones are SMT siblings.
  /// Falls back to Flat on any error. `root` is a parameter so tests can
  /// point it at fixture trees.
  static HwTopology FromSysfs(const std::string& root);

  /// The machine topology, parsed once per process from the real sysfs.
  static const HwTopology& Get();

  /// Socket of a logical cpu id; 0 for unknown ids.
  uint32_t SocketOfCpu(uint32_t cpu_id) const;

  /// Socket of the cpu the calling thread is running on right now
  /// (sched_getcpu); 0 when unavailable.
  uint32_t CurrentSocket() const;

  /// Logical cpu ids in pinning order: socket-major, physical cores before
  /// their SMT siblings within each socket — so k workers on one socket
  /// land on k distinct cores before any hyperthread pair doubles up.
  std::vector<uint32_t> PinOrder() const;
};

/// A worker -> cpu/socket assignment produced by MakePinPlan. When inactive
/// (pinning disabled, or nothing to gain on a single-cpu host) `cpu` holds
/// -1s and every worker maps to socket 0; `socket` is always sized to the
/// worker count so it can seed StealScheduler's locality order directly.
struct PinPlan {
  bool active = false;
  std::vector<int> cpu;          // per worker; -1 = unpinned
  std::vector<uint32_t> socket;  // per worker home socket
};

/// Assigns `num_workers` workers to cpus in PinOrder (wrapping when
/// oversubscribed). Inactive when `pin` is false or the topology has at
/// most one cpu.
PinPlan MakePinPlan(const HwTopology& topo, uint32_t num_workers, bool pin);

/// Pins the calling thread to one logical cpu. Returns false (and leaves
/// affinity unchanged) on failure or on non-Linux builds.
bool PinCurrentThreadToCpu(int cpu);

}  // namespace daf

#endif  // DAF_UTIL_TOPO_H_

#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace daf {

int64_t& FlagSet::Int64(const std::string& name, int64_t default_value,
                        const std::string& help) {
  Flag& f = flags_[name];
  f.type = Type::kInt64;
  f.help = help;
  f.int_value = default_value;
  return f.int_value;
}

double& FlagSet::Double(const std::string& name, double default_value,
                        const std::string& help) {
  Flag& f = flags_[name];
  f.type = Type::kDouble;
  f.help = help;
  f.double_value = default_value;
  return f.double_value;
}

std::string& FlagSet::String(const std::string& name,
                             const std::string& default_value,
                             const std::string& help) {
  Flag& f = flags_[name];
  f.type = Type::kString;
  f.help = help;
  f.string_value = default_value;
  return f.string_value;
}

std::string& FlagSet::OptionalString(const std::string& name,
                                     const std::string& default_value,
                                     const std::string& bare_value,
                                     const std::string& help) {
  Flag& f = flags_[name];
  f.type = Type::kOptionalString;
  f.help = help;
  f.string_value = default_value;
  f.bare_value = bare_value;
  return f.string_value;
}

bool& FlagSet::Bool(const std::string& name, bool default_value,
                    const std::string& help) {
  Flag& f = flags_[name];
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = default_value;
  return f.bool_value;
}

bool FlagSet::SetValue(Flag& flag, const std::string& text) {
  char* end = nullptr;
  switch (flag.type) {
    case Type::kInt64:
      flag.int_value = std::strtoll(text.c_str(), &end, 10);
      return end != nullptr && *end == '\0' && !text.empty();
    case Type::kDouble:
      flag.double_value = std::strtod(text.c_str(), &end);
      return end != nullptr && *end == '\0' && !text.empty();
    case Type::kString:
    case Type::kOptionalString:
      flag.string_value = text;
      return true;
    case Type::kBool:
      if (text == "true" || text == "1") {
        flag.bool_value = true;
        return true;
      }
      if (text == "false" || text == "0") {
        flag.bool_value = false;
        return true;
      }
      return false;
  }
  return false;
}

bool FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      error_ = std::string("unexpected positional argument: ") + arg;
      return false;
    }
    std::string body = arg + 2;
    std::string name;
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      error_ = "unknown flag: --" + name;
      return false;
    }
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.type == Type::kBool) {
        flag.bool_value = true;
        continue;
      }
      if (flag.type == Type::kOptionalString) {
        flag.string_value = flag.bare_value;
        continue;
      }
      if (i + 1 >= argc) {
        error_ = "missing value for flag --" + name;
        return false;
      }
      value = argv[++i];
    }
    if (!SetValue(flag, value)) {
      error_ = "bad value for flag --" + name + ": " + value;
      return false;
    }
  }
  return true;
}

void FlagSet::PrintUsage(const char* program) const {
  std::fprintf(stderr, "usage: %s [flags]\n", program);
  for (const auto& [name, flag] : flags_) {
    const char* type = "";
    std::string def;
    switch (flag.type) {
      case Type::kInt64:
        type = "int";
        def = std::to_string(flag.int_value);
        break;
      case Type::kDouble:
        type = "double";
        def = std::to_string(flag.double_value);
        break;
      case Type::kString:
        type = "string";
        def = flag.string_value;
        break;
      case Type::kOptionalString:
        type = "string?";
        def = flag.string_value;
        break;
      case Type::kBool:
        type = "bool";
        def = flag.bool_value ? "true" : "false";
        break;
    }
    std::fprintf(stderr, "  --%s (%s, default %s): %s\n", name.c_str(), type,
                 def.c_str(), flag.help.c_str());
  }
}

}  // namespace daf

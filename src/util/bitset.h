#ifndef DAF_UTIL_BITSET_H_
#define DAF_UTIL_BITSET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace daf {

/// A fixed-capacity dynamic bitset sized at construction time.
///
/// Used as the failing-set representation during backtracking (Section 6 of
/// the paper): one bit per query vertex, so union is O(|V(q)|/64) and
/// membership is O(1). The capacity is the number of query vertices and never
/// changes after construction (but `Resize` allows reusing one object across
/// queries).
class Bitset {
 public:
  Bitset() = default;

  /// Creates a bitset holding `num_bits` bits, all cleared.
  explicit Bitset(size_t num_bits) { Resize(num_bits); }

  Bitset(const Bitset&) = default;
  Bitset& operator=(const Bitset&) = default;
  Bitset(Bitset&&) = default;
  Bitset& operator=(Bitset&&) = default;

  /// Re-sizes to `num_bits` bits and clears all of them.
  void Resize(size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + 63) / 64, 0);
  }

  /// Grows to `num_bits` bits, *preserving* existing bits (new bits are
  /// cleared). Shrinking is a no-op. Used by the dynamic-graph layer where
  /// candidate bitmaps must survive vertex additions.
  void GrowTo(size_t num_bits) {
    if (num_bits <= num_bits_) return;
    num_bits_ = num_bits;
    words_.resize((num_bits + 63) / 64, 0);
  }

  /// Number of bits this bitset holds.
  size_t size() const { return num_bits_; }

  /// Sets bit `i`.
  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }

  /// Clears bit `i`.
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  /// Returns bit `i`.
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Clears all bits.
  void ClearAll() { std::fill(words_.begin(), words_.end(), 0); }

  /// Sets all bits in [0, size()).
  void SetAll() {
    if (num_bits_ == 0) return;
    std::fill(words_.begin(), words_.end(), ~uint64_t{0});
    size_t rem = num_bits_ & 63;
    if (rem != 0) words_.back() &= (uint64_t{1} << rem) - 1;
  }

  /// Returns true if no bit is set.
  bool None() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// Returns true if at least one bit is set.
  bool Any() const { return !None(); }

  /// Number of set bits.
  size_t Count() const;

  /// In-place union: this |= other. Both bitsets must have equal size.
  void UnionWith(const Bitset& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// In-place intersection: this &= other. Both bitsets must have equal size.
  void IntersectWith(const Bitset& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }

  /// Copies the contents of `other` (sizes must match).
  void Assign(const Bitset& other) { words_ = other.words_; }

  /// Returns true if every set bit of this is also set in `other`.
  bool IsSubsetOf(const Bitset& other) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & ~other.words_[i]) != 0) return false;
    }
    return true;
  }

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

  /// "0101..." rendering, bit 0 first; for tests and debugging.
  std::string ToString() const;

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace daf

#endif  // DAF_UTIL_BITSET_H_

#ifndef DAF_UTIL_STOP_H_
#define DAF_UTIL_STOP_H_

#include <atomic>
#include <cstdint>

#include "util/memory_budget.h"
#include "util/timer.h"

namespace daf {

/// Cooperative cancellation flag shared between a match run and whoever
/// wants to stop it (another thread, a signal handler, a serving layer).
/// `Cancel` is sticky: once requested, every later `cancelled()` returns
/// true until `Reset`. All operations are lock-free atomics, so a token may
/// be polled from hot search loops and cancelled from any thread.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent and thread-safe.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// True once Cancel() has been called (and until Reset()).
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Re-arms the token for reuse (e.g. pooled per-job tokens). Must not
  /// race with a concurrent match run polling the token.
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Why a run stopped early (StopCondition::Check).
enum class StopCause : uint8_t {
  kNone = 0,
  kDeadline,         // the wall-clock Deadline expired
  kCancel,           // the CancelToken was cancelled
  kMemoryExhausted,  // the MemoryBudget latched exhausted
};

/// The single early-exit predicate polled by the DAF loops (backtracking
/// and CS construction): one `Check()` covers the wall-clock deadline,
/// cooperative cancellation, and memory-budget exhaustion, so call sites
/// sample one predicate every N expansions instead of wiring each stop
/// source separately. The cheap atomic flags (cancel, budget) are consulted
/// before the clock read, and an unarmed condition (`armed() == false`)
/// lets callers skip the poll entirely. Referenced objects are not owned
/// and must outlive the condition.
class StopCondition {
 public:
  StopCondition() = default;
  StopCondition(const Deadline* deadline, const CancelToken* cancel,
                const MemoryBudget* budget = nullptr)
      : deadline_(deadline), cancel_(cancel), budget_(budget) {}

  /// True when any stop source is attached; false means Check() can never
  /// fire and the caller may skip polling altogether.
  bool armed() const {
    return deadline_ != nullptr || cancel_ != nullptr || budget_ != nullptr;
  }

  /// The first stop cause that currently holds. Cancel wins over exhaustion
  /// (an operator's explicit request trumps resource policy); both win over
  /// the deadline since the clock read is the costliest test.
  StopCause Check() const {
    if (cancel_ != nullptr && cancel_->cancelled()) return StopCause::kCancel;
    if (budget_ != nullptr && budget_->exhausted()) {
      return StopCause::kMemoryExhausted;
    }
    if (deadline_ != nullptr && deadline_->Expired()) {
      return StopCause::kDeadline;
    }
    return StopCause::kNone;
  }

 private:
  const Deadline* deadline_ = nullptr;
  const CancelToken* cancel_ = nullptr;
  const MemoryBudget* budget_ = nullptr;
};

}  // namespace daf

#endif  // DAF_UTIL_STOP_H_

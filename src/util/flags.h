#ifndef DAF_UTIL_FLAGS_H_
#define DAF_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace daf {

/// Minimal command-line flag parser for the benchmark and example binaries.
///
/// Supports `--name=value`, `--name value`, and bare `--name` for booleans.
/// Unknown flags are reported via `error()`. Typical use:
///
///   FlagSet flags;
///   int64_t& k = flags.Int64("k", 100000, "embeddings to find");
///   if (!flags.Parse(argc, argv)) { flags.PrintUsage(argv[0]); return 1; }
class FlagSet {
 public:
  /// Registers an int64 flag; returns a reference bound to its value.
  int64_t& Int64(const std::string& name, int64_t default_value,
                 const std::string& help);

  /// Registers a double flag.
  double& Double(const std::string& name, double default_value,
                 const std::string& help);

  /// Registers a string flag.
  std::string& String(const std::string& name,
                      const std::string& default_value,
                      const std::string& help);

  /// Registers a string flag whose value is optional: bare `--name` sets it
  /// to `bare_value` (the following argv entry is NOT consumed), and
  /// `--name=v` sets `v`. Useful for `--profile[=FILE]`-style flags.
  std::string& OptionalString(const std::string& name,
                              const std::string& default_value,
                              const std::string& bare_value,
                              const std::string& help);

  /// Registers a boolean flag (`--name` sets it true, `--name=false` false).
  bool& Bool(const std::string& name, bool default_value,
             const std::string& help);

  /// Parses argv; returns false on any unknown flag or malformed value.
  bool Parse(int argc, char** argv);

  /// The first parse error, if Parse returned false.
  const std::string& error() const { return error_; }

  /// Prints registered flags with defaults and help strings to stderr.
  void PrintUsage(const char* program) const;

 private:
  enum class Type { kInt64, kDouble, kString, kOptionalString, kBool };
  struct Flag {
    Type type;
    std::string help;
    // Exactly one of these is active, selected by `type`.
    int64_t int_value = 0;
    double double_value = 0;
    std::string string_value;
    bool bool_value = false;
    std::string bare_value;  // kOptionalString: value taken by bare --name
  };

  bool SetValue(Flag& flag, const std::string& text);

  std::map<std::string, Flag> flags_;
  std::string error_;
};

}  // namespace daf

#endif  // DAF_UTIL_FLAGS_H_

#ifndef DAF_UTIL_MEMORY_BUDGET_H_
#define DAF_UTIL_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>

namespace daf {

/// An atomic byte ledger with an optional limit and an optional parent,
/// forming a two-level (per-job under service-global) budget hierarchy.
///
/// Charging is *soft*: `Charge` always records the bytes — the memory was
/// (or is about to be) really allocated, so the ledger must stay truthful —
/// but returns false and latches the sticky `exhausted` flag as soon as this
/// budget or any ancestor goes over its limit. Allocators (util::Arena, the
/// CS build staging buffers) charge as they grow; the engine's StopCondition
/// polls `exhausted()` on the same cadence as deadline/cancel and unwinds
/// the run cooperatively with valid partial state. The overrun is therefore
/// bounded by one allocation step plus one poll interval, and no allocation
/// ever fails mid-write.
///
/// The exhausted flag latches only on the budget being charged through (the
/// per-job leaf): a service-global parent pushed over by one greedy job
/// recovers as soon as that job releases, instead of poisoning every job
/// that follows. Each level counts its own limit violations in
/// `rejections`.
///
/// All operations are lock-free atomics; a budget may be charged from
/// multiple threads (parallel workers growing scratch) and polled from hot
/// search loops. A limit of 0 means unlimited (pure accounting).
class MemoryBudget {
 public:
  explicit MemoryBudget(uint64_t limit_bytes = 0,
                        MemoryBudget* parent = nullptr)
      : limit_(limit_bytes), parent_(parent) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Records `bytes` against this budget and every ancestor. Returns false
  /// — and latches `exhausted()` on *this* budget — when any level ends up
  /// over its limit; the bytes are recorded regardless (see class comment).
  bool Charge(uint64_t bytes) {
    bool over = false;
    for (MemoryBudget* b = this; b != nullptr; b = b->parent_) {
      const uint64_t now =
          b->used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
      uint64_t peak = b->peak_.load(std::memory_order_relaxed);
      while (now > peak &&
             !b->peak_.compare_exchange_weak(peak, now,
                                             std::memory_order_relaxed)) {
      }
      if (b->limit_ != 0 && now > b->limit_) {
        b->rejections_.fetch_add(1, std::memory_order_relaxed);
        over = true;
      }
    }
    if (over) exhausted_.store(true, std::memory_order_release);
    return !over;
  }

  /// Returns previously charged bytes to this budget and every ancestor.
  void Uncharge(uint64_t bytes) {
    for (MemoryBudget* b = this; b != nullptr; b = b->parent_) {
      b->used_.fetch_sub(bytes, std::memory_order_relaxed);
    }
  }

  /// Sticky: true once any Charge went over a limit (or MarkExhausted was
  /// called) and until ResetExhausted. This is the flag StopCondition polls.
  bool exhausted() const {
    return exhausted_.load(std::memory_order_acquire);
  }

  /// Latches the exhausted flag without charging — the fault-injection and
  /// external-pressure entry point.
  void MarkExhausted() {
    rejections_.fetch_add(1, std::memory_order_relaxed);
    exhausted_.store(true, std::memory_order_release);
  }

  /// Re-arms a pooled per-job budget for its next run. Must not race with a
  /// run polling the budget (same contract as CancelToken::Reset).
  void ResetExhausted() {
    exhausted_.store(false, std::memory_order_release);
  }

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  uint64_t limit() const { return limit_; }
  /// Number of Charge calls that found this level over its limit.
  uint64_t rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }
  MemoryBudget* parent() const { return parent_; }

 private:
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> rejections_{0};
  std::atomic<bool> exhausted_{false};
  const uint64_t limit_;
  MemoryBudget* const parent_;
};

}  // namespace daf

#endif  // DAF_UTIL_MEMORY_BUDGET_H_

#ifndef DAF_UTIL_INTERSECT_H_
#define DAF_UTIL_INTERSECT_H_

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace daf {

/// Size ratio beyond which the dispatcher switches from an element-wise
/// kernel to the galloping probe (one exponential+binary search per
/// short-side element). Below it sequential access wins; above it the
/// O(short * log(long)) probe does.
inline constexpr size_t kGallopRatio = 32;

/// Minimum short-side size before the SIMD block kernels are worth their
/// setup (one full vector block plus the scalar tail).
inline constexpr size_t kSimdMinSize = 16;

/// The blocked-bitmap kernel activates when the smallest input covers at
/// least 1/kBitmapDensityInv of the universe: at that density the
/// word-parallel AND amortizes the two bitmap builds.
inline constexpr size_t kBitmapDensityInv = 16;

/// SIMD kernels store a full vector at a time and shrink afterwards, so an
/// output buffer must have this many writable slots past min(na, nb).
inline constexpr size_t kIntersectOutPad = 8;

/// Per-thread kernel-selection counters, surfaced through
/// obs::BacktrackProfile (merge/gallop/simd/bitmap hits per search).
struct IntersectStats {
  uint64_t merge = 0;   // scalar merge scans
  uint64_t gallop = 0;  // galloping probes (skewed sizes)
  uint64_t simd = 0;    // SSE/AVX2 shuffle kernel calls
  uint64_t bitmap = 0;  // blocked-bitmap k-way calls
};

/// CPU feature tier the dispatcher may use. Resolved once per process from
/// cpuid, capped by the DAF_DISABLE_SIMD environment variable (any value
/// other than empty or "0" forces kNone — the differential-testing switch).
enum class SimdLevel : uint8_t { kNone, kSse, kAvx2 };

/// The cached process-wide dispatch level (cpuid + env, computed once).
SimdLevel DetectedSimdLevel();

/// Re-reads the environment and cpuid on every call (tests flip
/// DAF_DISABLE_SIMD and compare against this; the hot path uses the cached
/// DetectedSimdLevel).
SimdLevel ComputeSimdLevel();

/// Index of the first element of sorted [first, first + n) that is >= key,
/// or n when none is. Branchless: the loop body compiles to a conditional
/// move, so the probe pays no mispredictions on random candidate data.
inline size_t BranchlessLowerBound(const uint32_t* first, size_t n,
                                   uint32_t key) {
  size_t lo = 0;
  while (n > 1) {
    const size_t half = n / 2;
    lo += (first[lo + half - 1] < key) ? half : 0;
    n -= half;
  }
  return (n == 1 && first[lo] < key) ? lo + 1 : lo;
}

/// Scalar merge intersection of two sorted unique ranges into `out`
/// (capacity >= min(na, nb); must not alias the inputs). Returns the number
/// of elements written. At comparable sizes the advance direction is a
/// well-predicted branch, so this speculative form beats a branchless
/// variant (which serializes the load -> compare -> advance chain).
inline size_t IntersectMergeKernel(const uint32_t* a, size_t na,
                                   const uint32_t* b, size_t nb,
                                   uint32_t* out) {
  size_t i = 0, j = 0, count = 0;
  while (i < na && j < nb) {
    const uint32_t x = a[i], y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      out[count++] = x;
      ++i;
      ++j;
    }
  }
  return count;
}

/// Galloping intersection: for each element of the short side, advance in
/// the long side by doubling steps, then finish with a branchless binary
/// search inside the overshot window. O(ns * log(nl)) with a hot prefix, vs
/// O(ns + nl) for the merge. `out` needs capacity >= ns and must not alias
/// `longer` (aliasing `shorter` is tolerated but not part of the contract).
inline size_t IntersectGallopKernel(const uint32_t* shorter, size_t ns,
                                    const uint32_t* longer, size_t nl,
                                    uint32_t* out) {
  size_t base = 0;  // every element of longer before `base` is < current key
  size_t count = 0;
  for (size_t i = 0; i < ns && base < nl; ++i) {
    const uint32_t key = shorter[i];
    if (longer[base] < key) {
      // Exponential probe: double `bound` until longer[base + bound] is no
      // longer < key (or the array ends). The previous probe at bound/2 was
      // < key, so the lower bound lies in (base + bound/2, base + bound].
      size_t bound = 1;
      while (base + bound < nl && longer[base + bound] < key) bound <<= 1;
      const size_t window_begin = base + (bound >> 1) + 1;
      const size_t window_end = std::min(base + bound + 1, nl);
      base = window_begin +
             BranchlessLowerBound(longer + window_begin,
                                  window_end - window_begin, key);
    }
    if (base < nl && longer[base] == key) {
      out[count++] = key;
      ++base;
    }
  }
  return count;
}

namespace intersect_internal {

/// Vector kernels (util/intersect_simd.cc). Both compare 4- resp. 8-element
/// blocks all-against-all via register rotations, compact the matches with
/// a shuffle table, and finish with a scalar merge tail. Call only when the
/// matching CpuSupports* returns true (they are compiled with per-function
/// target attributes, so the containing binary needs no -msse/-mavx2); on
/// non-x86 builds both degrade to the scalar merge. `out` needs capacity
/// >= min(na, nb) + kIntersectOutPad (full-width stores past the live end).
size_t IntersectSseKernel(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb, uint32_t* out);
size_t IntersectAvx2Kernel(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb, uint32_t* out);
bool CpuSupportsSse();   // SSSE3 (the 128-bit shuffle path)
bool CpuSupportsAvx2();

}  // namespace intersect_internal

/// Reusable word buffers of the blocked-bitmap kernel (they keep their
/// capacity across calls; a MatchContext owns one per worker).
struct BitmapScratch {
  std::vector<uint64_t> acc;  // running intersection bitmap
  std::vector<uint64_t> cur;  // bitmap of the list currently ANDed in
};

/// Blocked-bitmap k-way intersection of `k` sorted unique lists whose
/// values all lie in [0, universe): rasterize the first list, AND in each
/// later one (word-parallel), then re-extract sorted indices with ctz
/// scans. O(sum |lists| + (k+1) * universe/64) word ops — the win over the
/// merge comes from handling 64 candidates per AND when the lists are dense
/// in the universe. `out` needs capacity >= |lists[0]| (pass the smallest
/// list first to bound it tightest). Returns the number written.
inline size_t IntersectBitmapKernel(const uint32_t* const* lists,
                                    const size_t* sizes, size_t k,
                                    uint32_t universe, BitmapScratch* scratch,
                                    uint32_t* out) {
  const size_t words = (static_cast<size_t>(universe) + 63) / 64;
  if (k == 0 || words == 0) return 0;
  std::vector<uint64_t>& acc = scratch->acc;
  std::vector<uint64_t>& cur = scratch->cur;
  acc.assign(words, 0);
  for (size_t i = 0; i < sizes[0]; ++i) {
    const uint32_t x = lists[0][i];
    acc[x >> 6] |= uint64_t{1} << (x & 63);
  }
  for (size_t l = 1; l < k; ++l) {
    cur.assign(words, 0);
    for (size_t i = 0; i < sizes[l]; ++i) {
      const uint32_t x = lists[l][i];
      cur[x >> 6] |= uint64_t{1} << (x & 63);
    }
    for (size_t w = 0; w < words; ++w) acc[w] &= cur[w];
  }
  size_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = acc[w];
    const uint32_t base = static_cast<uint32_t>(w << 6);
    while (bits != 0) {
      out[count++] = base + static_cast<uint32_t>(std::countr_zero(bits));
      bits &= bits - 1;
    }
  }
  return count;
}

/// Two-way dispatch over the kernel family: gallop past kGallopRatio (the
/// hub-parent regime), the best available SIMD kernel at comparable sizes
/// (where galloping loses and the merge's per-element branches dominate),
/// scalar merge otherwise. `out` needs capacity >= min(na, nb) +
/// kIntersectOutPad and must not alias the inputs. `stats` (optional)
/// counts which kernel ran.
inline size_t IntersectDispatch(const uint32_t* a, size_t na,
                                const uint32_t* b, size_t nb, uint32_t* out,
                                IntersectStats* stats = nullptr) {
  if (na == 0 || nb == 0) return 0;
  if (na > nb * kGallopRatio) {
    if (stats != nullptr) ++stats->gallop;
    return IntersectGallopKernel(b, nb, a, na, out);
  }
  if (nb > na * kGallopRatio) {
    if (stats != nullptr) ++stats->gallop;
    return IntersectGallopKernel(a, na, b, nb, out);
  }
  if (std::min(na, nb) >= kSimdMinSize) {
    switch (DetectedSimdLevel()) {
      case SimdLevel::kAvx2:
        if (stats != nullptr) ++stats->simd;
        return intersect_internal::IntersectAvx2Kernel(a, na, b, nb, out);
      case SimdLevel::kSse:
        if (stats != nullptr) ++stats->simd;
        return intersect_internal::IntersectSseKernel(a, na, b, nb, out);
      case SimdLevel::kNone:
        break;
    }
  }
  if (stats != nullptr) ++stats->merge;
  return IntersectMergeKernel(a, na, b, nb, out);
}

/// Intersects two sorted unique ranges into `*out` (overwritten), picking a
/// kernel per IntersectDispatch. `out` must not alias the inputs (asserted
/// in debug builds — an aliasing call would read through a buffer the
/// resize below may reallocate); it is sized once up front, so the kernels
/// write raw slots instead of push_back'ing through a back_inserter.
inline void IntersectSorted(const uint32_t* a, size_t na, const uint32_t* b,
                            size_t nb, std::vector<uint32_t>* out,
                            IntersectStats* stats = nullptr) {
  if (na == 0 || nb == 0) {
    out->clear();
    return;
  }
  assert(out->data() != a && out->data() != b &&
         "IntersectSorted output must not alias an input");
  out->resize(std::min(na, nb) + kIntersectOutPad);
  out->resize(IntersectDispatch(a, na, b, nb, out->data(), stats));
}

/// One input of a k-way intersection (a view into a CS adjacency segment).
struct KWayList {
  const uint32_t* data = nullptr;
  size_t size = 0;
};

/// Reusable buffers of IntersectKWay (capacity retained across calls).
struct KWayScratch {
  BitmapScratch bitmap;
  std::vector<KWayList> order;        // inputs sorted by ascending size
  std::vector<const uint32_t*> ptrs;  // bitmap-kernel argument marshalling
  std::vector<size_t> sizes;
  std::vector<uint32_t> tmp;  // ping-pong buffer of the pairwise chain
};

/// Intersects `k` sorted unique lists of indices in [0, universe) into
/// `*out` (overwritten). Orders the inputs by ascending size, then either
/// runs the blocked-bitmap kernel (when the smallest list is dense in the
/// universe — the dense-CS-segment regime) or folds the lists pairwise
/// smallest-first through IntersectDispatch, ping-ponging between `*out`
/// and the scratch so no kernel writes a buffer it is reading. `out` must
/// not alias any input or the scratch.
inline void IntersectKWay(const KWayList* lists, size_t k, uint32_t universe,
                          KWayScratch* scratch, std::vector<uint32_t>* out,
                          IntersectStats* stats = nullptr) {
  out->clear();
  if (k == 0) return;
  std::vector<KWayList>& order = scratch->order;
  order.assign(lists, lists + k);
  std::sort(order.begin(), order.end(),
            [](const KWayList& x, const KWayList& y) { return x.size < y.size; });
  const size_t n_min = order[0].size;
  if (n_min == 0) return;
  if (k == 1) {
    out->assign(order[0].data, order[0].data + n_min);
    return;
  }
  if (universe > 0 && n_min * kBitmapDensityInv >= universe) {
    scratch->ptrs.resize(k);
    scratch->sizes.resize(k);
    for (size_t i = 0; i < k; ++i) {
      scratch->ptrs[i] = order[i].data;
      scratch->sizes[i] = order[i].size;
    }
    out->resize(n_min);
    out->resize(IntersectBitmapKernel(scratch->ptrs.data(),
                                      scratch->sizes.data(), k, universe,
                                      &scratch->bitmap, out->data()));
    if (stats != nullptr) ++stats->bitmap;
    return;
  }
  // Pairwise chain, smallest pair first so intermediate results shrink as
  // fast as possible. The final step must land in *out, so the starting
  // target alternates with the parity of k - 1.
  std::vector<uint32_t>* bufs[2] = {out, &scratch->tmp};
  int target = (k % 2 == 0) ? 0 : 1;
  const uint32_t* cur = order[0].data;
  size_t ncur = n_min;
  for (size_t i = 1; i < k; ++i) {
    std::vector<uint32_t>* dst = bufs[target];
    dst->resize(std::min(ncur, order[i].size) + kIntersectOutPad);
    ncur = IntersectDispatch(cur, ncur, order[i].data, order[i].size,
                             dst->data(), stats);
    dst->resize(ncur);
    if (ncur == 0) {
      out->clear();
      return;
    }
    cur = dst->data();
    target ^= 1;
  }
  // The loop's last write targeted *out by the parity choice above.
}

}  // namespace daf

#endif  // DAF_UTIL_INTERSECT_H_

#ifndef DAF_UTIL_INTERSECT_H_
#define DAF_UTIL_INTERSECT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

namespace daf {

/// Size ratio beyond which IntersectSorted switches from the scalar merge
/// to the galloping probe (one exponential+binary search per short-side
/// element). Below it the merge's sequential access wins; above it the
/// O(short * log(long)) probe does.
inline constexpr size_t kGallopRatio = 32;

/// Index of the first element of sorted [first, first + n) that is >= key,
/// or n when none is. Branchless: the loop body compiles to a conditional
/// move, so the probe pays no mispredictions on random candidate data.
inline size_t BranchlessLowerBound(const uint32_t* first, size_t n,
                                   uint32_t key) {
  size_t lo = 0;
  while (n > 1) {
    const size_t half = n / 2;
    lo += (first[lo + half - 1] < key) ? half : 0;
    n -= half;
  }
  return (n == 1 && first[lo] < key) ? lo + 1 : lo;
}

namespace intersect_internal {

/// Galloping intersection: for each element of the short side, advance in
/// the long side by doubling steps, then finish with a branchless binary
/// search inside the overshot window. O(ns * log(nl)) with a hot prefix, vs
/// O(ns + nl) for the merge.
inline void IntersectGallop(const uint32_t* shorter, size_t ns,
                            const uint32_t* longer, size_t nl,
                            std::vector<uint32_t>* out) {
  size_t base = 0;  // every element of longer before `base` is < current key
  for (size_t i = 0; i < ns && base < nl; ++i) {
    const uint32_t key = shorter[i];
    if (longer[base] < key) {
      // Exponential probe: double `bound` until longer[base + bound] is no
      // longer < key (or the array ends). The previous probe at bound/2 was
      // < key, so the lower bound lies in (base + bound/2, base + bound].
      size_t bound = 1;
      while (base + bound < nl && longer[base + bound] < key) bound <<= 1;
      const size_t window_begin = base + (bound >> 1) + 1;
      const size_t window_end = std::min(base + bound + 1, nl);
      base = window_begin +
             BranchlessLowerBound(longer + window_begin,
                                  window_end - window_begin, key);
    }
    if (base < nl && longer[base] == key) {
      out->push_back(key);
      ++base;
    }
  }
}

}  // namespace intersect_internal

/// Intersects two sorted unique ranges into `*out` (overwritten). Adaptive:
/// scalar merge for comparable sizes, galloping search when one side is
/// more than kGallopRatio times the other (Definition 5.2's extendable-
/// candidate computation hits both regimes: hub parents contribute long CS
/// adjacency lists next to short ones). `out` must not alias the inputs.
/// Header-inline so the merge path specializes into the caller exactly like
/// a direct std::set_intersection call would.
inline void IntersectSorted(const uint32_t* a, size_t na, const uint32_t* b,
                            size_t nb, std::vector<uint32_t>* out) {
  out->clear();
  if (na == 0 || nb == 0) return;
  if (na > nb * kGallopRatio) {
    intersect_internal::IntersectGallop(b, nb, a, na, out);
  } else if (nb > na * kGallopRatio) {
    intersect_internal::IntersectGallop(a, na, b, nb, out);
  } else {
    // At comparable sizes the advance direction is a well-predicted branch,
    // so the speculative stdlib merge beats a branchless variant (which
    // serializes the load -> compare -> advance dependency chain).
    std::set_intersection(a, a + na, b, b + nb, std::back_inserter(*out));
  }
}

}  // namespace daf

#endif  // DAF_UTIL_INTERSECT_H_

#ifndef DAF_BASELINES_GRAPHQL_H_
#define DAF_BASELINES_GRAPHQL_H_

#include "baselines/common.h"

namespace daf::baselines {

/// GraphQL [He & Singh, SIGMOD 2008]: candidate sets are refined by
/// iterated pseudo-isomorphism checks — v stays in C(u) only while a
/// semi-perfect bipartite matching exists between N(u) and N(v) that pairs
/// every query neighbor with a distinct data neighbor carrying it in its
/// candidate set — followed by backtracking over a greedy
/// smallest-candidate-set-first, connectivity-preserving order.
MatcherResult GraphQlMatch(const Graph& query, const Graph& data,
                           const MatcherOptions& options = {});

}  // namespace daf::baselines

#endif  // DAF_BASELINES_GRAPHQL_H_

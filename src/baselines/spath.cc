#include "baselines/spath.h"

#include <algorithm>
#include <map>
#include <queue>
#include <vector>

#include "graph/query_extract.h"

namespace daf::baselines {

namespace {

// Per-label counts of distinct vertices at distance 1 and within the radius-2
// ball (distance 1 or 2). The ball formulation is what makes the filter
// sound: a vertex at query distance exactly 2 may map to a vertex at data
// distance 1 (the data graph can have extra edges between the images), but
// the radius-2 ball around v always contains the images of the radius-2
// ball around u.
struct Signature {
  std::map<Label, uint32_t> dist1;
  std::map<Label, uint32_t> ball2;
};

// True iff `have` dominates `need` (every label count is >=).
bool Dominates(const std::map<Label, uint32_t>& have,
               const std::map<Label, uint32_t>& need) {
  for (const auto& [label, count] : need) {
    auto it = have.find(label);
    if (it == have.end() || it->second < count) return false;
  }
  return true;
}

Signature ComputeSignature(const Graph& g, VertexId v,
                           const std::vector<Label>* label_map) {
  Signature sig;
  auto mapped = [&](VertexId w) {
    return label_map == nullptr ? g.label(w) : (*label_map)[w];
  };
  std::vector<VertexId> dist1;
  for (VertexId w : g.Neighbors(v)) {
    ++sig.dist1[mapped(w)];
    dist1.push_back(w);
  }
  // Distinct vertices in the radius-2 ball around v (v excluded).
  std::vector<VertexId> ball;
  ball = dist1;
  for (VertexId w : dist1) {
    for (VertexId x : g.Neighbors(w)) {
      if (x != v) ball.push_back(x);
    }
  }
  std::sort(ball.begin(), ball.end());
  ball.erase(std::unique(ball.begin(), ball.end()), ball.end());
  for (VertexId x : ball) ++sig.ball2[mapped(x)];
  return sig;
}

class SPath {
 public:
  SPath(const Graph& query, const Graph& data, const MatcherOptions& options,
        const Deadline& deadline)
      : query_(query),
        data_(data),
        options_(options),
        deadline_(deadline),
        data_labels_(MapQueryLabels(query, data)),
        mapping_(query.NumVertices(), kInvalidVertex),
        used_(data.NumVertices(), false),
        edge_ok_(query, data) {}

  bool BuildCandidates(uint64_t* aux_size) {
    const uint32_t n = query_.NumVertices();
    candidates_.assign(n, {});
    for (uint32_t u = 0; u < n; ++u) {
      if (data_labels_[u] == kNoSuchLabel) return false;
      Signature query_sig = ComputeSignature(query_, u, &data_labels_);
      for (VertexId v : data_.VerticesWithLabel(data_labels_[u])) {
        if (data_.degree(v) < query_.degree(u)) continue;
        Signature data_sig = ComputeSignature(data_, v, nullptr);
        if (Dominates(data_sig.dist1, query_sig.dist1) &&
            Dominates(data_sig.ball2, query_sig.ball2)) {
          candidates_[u].push_back(v);
        }
      }
      if (candidates_[u].empty()) return false;
    }
    *aux_size = 0;
    for (const auto& c : candidates_) *aux_size += c.size();
    return true;
  }

  // Path-at-a-time order: BFS spanning tree from the most selective vertex,
  // decomposed into root-to-leaf paths ordered by estimated selectivity
  // (sum of candidate-set sizes along the path, ascending).
  void BuildOrder() {
    const uint32_t n = query_.NumVertices();
    VertexId root = 0;
    for (uint32_t u = 1; u < n; ++u) {
      if (candidates_[u].size() < candidates_[root].size()) root = u;
    }
    std::vector<VertexId> parent(n, kInvalidVertex);
    std::vector<bool> seen(n, false);
    std::vector<std::vector<VertexId>> children(n);
    std::queue<VertexId> queue;
    seen[root] = true;
    queue.push(root);
    std::vector<VertexId> leaves;
    while (!queue.empty()) {
      VertexId u = queue.front();
      queue.pop();
      bool has_child = false;
      for (VertexId w : query_.Neighbors(u)) {
        if (!seen[w]) {
          seen[w] = true;
          parent[w] = u;
          children[u].push_back(w);
          queue.push(w);
          has_child = true;
        }
      }
      if (!has_child) leaves.push_back(u);
    }
    // Root-to-leaf paths with their selectivity estimates.
    std::vector<std::pair<uint64_t, std::vector<VertexId>>> paths;
    for (VertexId leaf : leaves) {
      std::vector<VertexId> path;
      uint64_t estimate = 0;
      for (VertexId u = leaf; u != kInvalidVertex; u = parent[u]) {
        path.push_back(u);
        estimate += candidates_[u].size();
      }
      std::reverse(path.begin(), path.end());
      paths.emplace_back(estimate, std::move(path));
    }
    std::sort(paths.begin(), paths.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<bool> ordered(n, false);
    for (const auto& [estimate, path] : paths) {
      for (VertexId u : path) {
        if (!ordered[u]) {
          ordered[u] = true;
          order_.push_back(u);
        }
      }
    }
    for (uint32_t u = 0; u < n; ++u) {
      if (!ordered[u]) order_.push_back(u);  // disconnected queries
    }
    position_.assign(n, 0);
    for (uint32_t i = 0; i < n; ++i) position_[order_[i]] = i;
    parent_ = std::move(parent);
  }

  void Run(MatcherResult* result) {
    result_ = result;
    Recurse(0);
  }

 private:
  void Recurse(uint32_t depth) {
    ++result_->recursive_calls;
    if ((result_->recursive_calls & 1023) == 0 && deadline_.Expired()) {
      result_->timed_out = true;
      stop_ = true;
      return;
    }
    if (depth == query_.NumVertices()) {
      ++result_->embeddings;
      if (options_.callback && !options_.callback(mapping_)) stop_ = true;
      if (options_.limit != 0 && result_->embeddings >= options_.limit) {
        result_->limit_reached = true;
        stop_ = true;
      }
      return;
    }
    VertexId u = order_[depth];
    // Prefer extending from the tree parent when it is already mapped.
    VertexId anchor = kInvalidVertex;
    if (parent_[u] != kInvalidVertex && position_[parent_[u]] < depth) {
      anchor = parent_[u];
    } else {
      for (VertexId w : query_.Neighbors(u)) {
        if (position_[w] < depth) {
          anchor = w;
          break;
        }
      }
    }
    auto try_vertex = [&](VertexId v) {
      if (used_[v]) return;
      if (anchor == kInvalidVertex &&
          !std::binary_search(candidates_[u].begin(), candidates_[u].end(),
                              v)) {
        return;
      }
      for (VertexId w : query_.Neighbors(u)) {
        if (position_[w] < depth && !edge_ok_(u, w, mapping_[w], v)) {
          return;
        }
      }
      mapping_[u] = v;
      used_[v] = true;
      Recurse(depth + 1);
      used_[v] = false;
      mapping_[u] = kInvalidVertex;
    };
    if (anchor != kInvalidVertex) {
      for (VertexId v :
           data_.NeighborsWithLabel(mapping_[anchor], data_labels_[u])) {
        if (!std::binary_search(candidates_[u].begin(), candidates_[u].end(),
                                v)) {
          continue;
        }
        try_vertex(v);
        if (stop_) return;
      }
    } else {
      for (VertexId v : candidates_[u]) {
        try_vertex(v);
        if (stop_) return;
      }
    }
  }

  const Graph& query_;
  const Graph& data_;
  const MatcherOptions& options_;
  const Deadline& deadline_;
  std::vector<Label> data_labels_;
  std::vector<std::vector<VertexId>> candidates_;
  std::vector<VertexId> order_;
  std::vector<uint32_t> position_;
  std::vector<VertexId> parent_;
  std::vector<VertexId> mapping_;
  std::vector<bool> used_;
  EdgeVerifier edge_ok_;
  MatcherResult* result_ = nullptr;
  bool stop_ = false;
};

}  // namespace

MatcherResult SPathMatch(const Graph& query, const Graph& data,
                         const MatcherOptions& options) {
  MatcherResult result;
  Deadline deadline(options.time_limit_ms);
  Stopwatch preprocess_timer;
  SPath spath(query, data, options, deadline);
  bool feasible = spath.BuildCandidates(&result.aux_size);
  if (feasible) spath.BuildOrder();
  result.preprocess_ms = preprocess_timer.ElapsedMs();
  if (!feasible) return result;
  Stopwatch search_timer;
  spath.Run(&result);
  result.search_ms = search_timer.ElapsedMs();
  return result;
}

}  // namespace daf::baselines

#ifndef DAF_BASELINES_BRUTEFORCE_H_
#define DAF_BASELINES_BRUTEFORCE_H_

#include "baselines/common.h"

namespace daf::baselines {

/// Reference oracle: plain backtracking in query-vertex-id order with no
/// filtering beyond labels and already-mapped-neighbor adjacency. Exponential
/// and intended only for validating the other algorithms on small instances.
/// Unlike the production matchers it accepts disconnected query graphs.
MatcherResult BruteForceMatch(const Graph& query, const Graph& data,
                              const MatcherOptions& options = {});

}  // namespace daf::baselines

#endif  // DAF_BASELINES_BRUTEFORCE_H_

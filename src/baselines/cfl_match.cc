#include "baselines/cfl_match.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "graph/properties.h"
#include "graph/query_extract.h"
#include "util/bitset.h"

namespace daf::baselines {

namespace {

class Cfl {
 public:
  Cfl(const Graph& query, const Graph& data, const MatcherOptions& options,
      const Deadline& deadline)
      : query_(query),
        data_(data),
        options_(options),
        deadline_(deadline),
        data_labels_(MapQueryLabels(query, data)),
        n_(query.NumVertices()),
        mapping_(n_, kInvalidVertex),
        mapped_idx_(n_, kNotMapped),
        used_(data.NumVertices(), false),
        edge_ok_(query, data) {}

  // Builds the CPI; returns false when the structure certifies that there
  // are no embeddings.
  bool BuildCpi(uint64_t* aux_size) {
    for (uint32_t u = 0; u < n_; ++u) {
      if (data_labels_[u] == kNoSuchLabel) return false;
    }
    ChooseRootAndTree();

    cand_.assign(n_, {});
    member_.assign(n_, Bitset(data_.NumVertices()));

    // --- Top-down construction with NLF/MND local filters and backward
    // non-tree-edge filtering.
    if (!SeedRoot()) return false;
    std::vector<bool> processed(n_, false);
    processed[root_] = true;
    for (VertexId u : bfs_order_) {
      if (u == root_) continue;
      VertexId p = tree_parent_[u];
      auto& cu = cand_[u];
      for (VertexId vp : cand_[p]) {
        for (VertexId v : data_.NeighborsWithLabel(vp, data_labels_[u])) {
          if (!member_[u].Test(v) && LocalFiltersPass(u, v)) {
            member_[u].Set(v);
            cu.push_back(v);
          }
        }
      }
      std::sort(cu.begin(), cu.end());
      // Backward non-tree edges: v must have a candidate neighbor in every
      // already-processed non-tree neighbor's set.
      size_t kept = 0;
      for (VertexId v : cu) {
        bool ok = true;
        for (VertexId w : query_.Neighbors(u)) {
          if (w == p || !processed[w]) continue;
          if (!HasCandidateNeighbor(v, w)) {
            ok = false;
            break;
          }
        }
        if (ok) {
          cu[kept++] = v;
        } else {
          member_[u].Clear(v);
        }
      }
      cu.resize(kept);
      if (cu.empty()) return false;
      processed[u] = true;
    }

    // --- Bottom-up refinement: every tree child must stay reachable.
    for (size_t i = bfs_order_.size(); i-- > 0;) {
      VertexId u = bfs_order_[i];
      if (tree_children_[u].empty()) continue;
      if (!Refine(u, tree_children_[u])) return false;
    }
    // --- Second top-down refinement: parent + backward non-tree edges.
    for (VertexId u : bfs_order_) {
      if (u == root_) continue;
      std::vector<VertexId> checks{tree_parent_[u]};
      if (!Refine(u, checks)) return false;
    }

    // --- Materialize tree-edge adjacency (candidate indices).
    adj_offsets_.assign(n_, {});
    adj_targets_.assign(n_, {});
    std::vector<uint32_t> cand_index(data_.NumVertices(), 0);
    for (VertexId u : bfs_order_) {
      if (u == root_) continue;
      VertexId p = tree_parent_[u];
      for (uint32_t i = 0; i < cand_[u].size(); ++i) {
        cand_index[cand_[u][i]] = i;
      }
      auto& offsets = adj_offsets_[u];
      auto& targets = adj_targets_[u];
      offsets.assign(cand_[p].size() + 1, 0);
      for (uint32_t ip = 0; ip < cand_[p].size(); ++ip) {
        for (VertexId v :
             data_.NeighborsWithLabel(cand_[p][ip], data_labels_[u])) {
          if (member_[u].Test(v)) targets.push_back(cand_index[v]);
        }
        offsets[ip + 1] = targets.size();
      }
    }

    *aux_size = 0;
    for (const auto& c : cand_) *aux_size += c.size();
    BuildOrder();
    return true;
  }

  void Run(MatcherResult* result) {
    result_ = result;
    Recurse(0);
  }

 private:
  static constexpr uint32_t kNotMapped = static_cast<uint32_t>(-1);

  bool LocalFiltersPass(VertexId u, VertexId v) const {
    if (data_.degree(v) < query_.degree(u)) return false;
    uint32_t max_nbr_deg = 0;
    for (VertexId w : query_.Neighbors(u)) {
      max_nbr_deg = std::max(max_nbr_deg, query_.degree(w));
    }
    if (data_.MaxNeighborDegree(v) < max_nbr_deg) return false;
    // NLF.
    for (VertexId w : query_.Neighbors(u)) {
      Label l = data_labels_[w];
      uint32_t need = 0;
      for (VertexId w2 : query_.Neighbors(u)) {
        if (data_labels_[w2] == l) ++need;
      }
      if (data_.NeighborLabelCount(v, l) < need) return false;
    }
    return true;
  }

  bool HasCandidateNeighbor(VertexId v, VertexId w) const {
    for (VertexId x : data_.NeighborsWithLabel(v, data_labels_[w])) {
      if (member_[w].Test(x)) return true;
    }
    return false;
  }

  // Keeps v in C(u) only if it has a candidate neighbor in C(w) for every
  // w in `checks`. Returns false if C(u) empties.
  bool Refine(VertexId u, const std::vector<VertexId>& checks) {
    auto& cu = cand_[u];
    size_t kept = 0;
    for (VertexId v : cu) {
      bool ok = true;
      for (VertexId w : checks) {
        if (!HasCandidateNeighbor(v, w)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        cu[kept++] = v;
      } else {
        member_[u].Clear(v);
      }
    }
    cu.resize(kept);
    return !cu.empty();
  }

  bool SeedRoot() {
    auto& cr = cand_[root_];
    for (VertexId v : data_.VerticesWithLabel(data_labels_[root_])) {
      if (LocalFiltersPass(root_, v)) {
        cr.push_back(v);
        member_[root_].Set(v);
      }
    }
    return !cr.empty();
  }

  void ChooseRootAndTree() {
    // Core = 2-core of q; prefer a root inside the core (as CFL does).
    std::vector<bool> in_core = KCoreMembership(query_, 2);
    bool has_core = std::find(in_core.begin(), in_core.end(), true) !=
                    in_core.end();
    double best = std::numeric_limits<double>::infinity();
    root_ = 0;
    for (uint32_t u = 0; u < n_; ++u) {
      if (has_core && !in_core[u]) continue;
      uint32_t count = 0;
      for (VertexId v : data_.VerticesWithLabel(data_labels_[u])) {
        if (data_.degree(v) >= query_.degree(u)) ++count;
      }
      double score = static_cast<double>(count) /
                     std::max<uint32_t>(1, query_.degree(u));
      if (score < best) {
        best = score;
        root_ = u;
      }
    }
    // Category per vertex: 0 = core, 1 = forest, 2 = leaf.
    category_.assign(n_, 1);
    for (uint32_t u = 0; u < n_; ++u) {
      if (query_.degree(u) <= 1) {
        category_[u] = 2;
      } else if (has_core && in_core[u]) {
        category_[u] = 0;
      }
    }
    category_[root_] = 0;
    // BFS spanning tree.
    tree_parent_.assign(n_, kInvalidVertex);
    tree_children_.assign(n_, {});
    std::vector<bool> seen(n_, false);
    std::queue<VertexId> queue;
    seen[root_] = true;
    queue.push(root_);
    bfs_order_.clear();
    while (!queue.empty()) {
      VertexId u = queue.front();
      queue.pop();
      bfs_order_.push_back(u);
      for (VertexId w : query_.Neighbors(u)) {
        if (!seen[w]) {
          seen[w] = true;
          tree_parent_[w] = u;
          tree_children_[u].push_back(w);
          queue.push(w);
        }
      }
    }
  }

  // Core-forest-leaf ordering with the path-cardinality preference: the
  // matching order is grown greedily under the tree-consistency constraint
  // (parent before child), picking at each step the available vertex with
  // the smallest (category, path estimate, |C|) key. The path estimate of u
  // is the cheapest root-to-leaf tree path through u (sum of log candidate
  // counts), i.e., the infrequent-path-first rule of the path ordering.
  void BuildOrder() {
    std::vector<double> path_estimate(n_,
                                      std::numeric_limits<double>::max());
    for (uint32_t leaf = 0; leaf < n_; ++leaf) {
      if (!tree_children_[leaf].empty()) continue;
      double est = 0;
      for (VertexId u = leaf; u != kInvalidVertex; u = tree_parent_[u]) {
        est += std::log(static_cast<double>(cand_[u].size()) + 1.0);
      }
      for (VertexId u = leaf; u != kInvalidVertex; u = tree_parent_[u]) {
        path_estimate[u] = std::min(path_estimate[u], est);
      }
    }
    order_.clear();
    order_.reserve(n_);
    std::vector<bool> ordered(n_, false);
    order_.push_back(root_);
    ordered[root_] = true;
    while (order_.size() < n_) {
      VertexId best = kInvalidVertex;
      for (uint32_t u = 0; u < n_; ++u) {
        if (ordered[u] || !ordered[tree_parent_[u]]) continue;
        if (best == kInvalidVertex) {
          best = u;
          continue;
        }
        auto key = [&](VertexId x) {
          return std::make_tuple(category_[x], path_estimate[x],
                                 cand_[x].size(), x);
        };
        if (key(u) < key(best)) best = u;
      }
      ordered[best] = true;
      order_.push_back(best);
    }
    position_.assign(n_, 0);
    for (uint32_t i = 0; i < n_; ++i) position_[order_[i]] = i;
  }

  void Recurse(uint32_t depth) {
    ++result_->recursive_calls;
    if ((result_->recursive_calls & 1023) == 0 && deadline_.Expired()) {
      result_->timed_out = true;
      stop_ = true;
      return;
    }
    if (depth == n_) {
      ++result_->embeddings;
      if (options_.callback && !options_.callback(mapping_)) stop_ = true;
      if (options_.limit != 0 && result_->embeddings >= options_.limit) {
        result_->limit_reached = true;
        stop_ = true;
      }
      return;
    }
    VertexId u = order_[depth];
    auto try_candidate = [&](uint32_t idx) {
      VertexId v = cand_[u][idx];
      if (used_[v]) return;
      // Tree edge to the parent is implied by the CPI adjacency; all other
      // edges to mapped vertices (non-tree edges in particular) are probed
      // in the data graph — the structural weakness DAF removes.
      for (VertexId w : query_.Neighbors(u)) {
        if ((w != tree_parent_[u] || edge_ok_.active()) &&
            position_[w] < depth && !edge_ok_(u, w, mapping_[w], v)) {
          return;
        }
      }
      mapping_[u] = v;
      mapped_idx_[u] = idx;
      used_[v] = true;
      Recurse(depth + 1);
      used_[v] = false;
      mapping_[u] = kInvalidVertex;
      mapped_idx_[u] = kNotMapped;
    };
    if (u == root_) {
      for (uint32_t idx = 0; idx < cand_[u].size(); ++idx) {
        try_candidate(idx);
        if (stop_) return;
      }
    } else {
      VertexId p = tree_parent_[u];
      uint32_t ip = mapped_idx_[p];
      const auto& offsets = adj_offsets_[u];
      const auto& targets = adj_targets_[u];
      for (uint64_t t = offsets[ip]; t < offsets[ip + 1]; ++t) {
        try_candidate(targets[t]);
        if (stop_) return;
      }
    }
  }

  const Graph& query_;
  const Graph& data_;
  const MatcherOptions& options_;
  const Deadline& deadline_;
  std::vector<Label> data_labels_;
  const uint32_t n_;
  VertexId root_ = 0;
  std::vector<VertexId> tree_parent_;
  std::vector<std::vector<VertexId>> tree_children_;
  std::vector<VertexId> bfs_order_;
  std::vector<uint32_t> category_;
  std::vector<std::vector<VertexId>> cand_;
  std::vector<Bitset> member_;
  std::vector<std::vector<uint64_t>> adj_offsets_;
  std::vector<std::vector<uint32_t>> adj_targets_;
  std::vector<VertexId> order_;
  std::vector<uint32_t> position_;
  std::vector<VertexId> mapping_;
  std::vector<uint32_t> mapped_idx_;
  std::vector<bool> used_;
  EdgeVerifier edge_ok_;
  MatcherResult* result_ = nullptr;
  bool stop_ = false;
};

}  // namespace

MatcherResult CflMatch(const Graph& query, const Graph& data,
                       const MatcherOptions& options) {
  MatcherResult result;
  if (query.NumVertices() == 0 || !IsConnected(query)) {
    result.ok = false;
    return result;
  }
  Deadline deadline(options.time_limit_ms);
  Stopwatch preprocess_timer;
  Cfl cfl(query, data, options, deadline);
  bool feasible = cfl.BuildCpi(&result.aux_size);
  result.preprocess_ms = preprocess_timer.ElapsedMs();
  if (!feasible) return result;
  Stopwatch search_timer;
  cfl.Run(&result);
  result.search_ms = search_timer.ElapsedMs();
  return result;
}

}  // namespace daf::baselines

#ifndef DAF_BASELINES_COMMON_H_
#define DAF_BASELINES_COMMON_H_

#include <cstdint>

#include "graph/embedding.h"
#include "graph/graph.h"
#include "util/timer.h"

namespace daf::baselines {

/// Options shared by all baseline matchers.
struct MatcherOptions {
  /// Stop after this many embeddings; 0 = enumerate all.
  uint64_t limit = 0;
  /// Wall-clock limit covering preprocessing + search; 0 = none.
  uint64_t time_limit_ms = 0;
  /// When false, enumerate homomorphisms (injectivity dropped). Currently
  /// honored by BruteForceMatch only, as the homomorphism oracle for the
  /// DAF extension; the published baselines are embedding enumerators.
  bool injective = true;
  /// Optional per-embedding callback (mapping in query-vertex-id order).
  EmbeddingCallback callback;
};

/// Result counters shared by all baseline matchers. Every baseline in this
/// library is a complete, exact enumeration algorithm: on a completed run
/// (`Complete()`), `embeddings` equals the total number of distinct
/// embeddings of q in G.
struct MatcherResult {
  bool ok = true;
  uint64_t embeddings = 0;
  uint64_t recursive_calls = 0;
  bool limit_reached = false;
  bool timed_out = false;
  double preprocess_ms = 0;
  double search_ms = 0;
  /// Size of the algorithm's auxiliary candidate structure, measured as
  /// Σ_u |C(u)| where applicable (CPI for CFL-Match; 0 for VF2 etc.). This
  /// is the Figure 9 metric.
  uint64_t aux_size = 0;

  bool Complete() const { return ok && !limit_reached && !timed_out; }
};

/// Verifies that the data edge realizing query edge (qu, qw) exists —
/// including, when either graph carries edge labels, that the labels
/// agree. With unlabeled edges this is a plain adjacency test.
class EdgeVerifier {
 public:
  EdgeVerifier(const Graph& query, const Graph& data)
      : query_(query),
        data_(data),
        check_labels_(query.HasNontrivialEdgeLabels() ||
                      data.HasNontrivialEdgeLabels()) {}

  bool operator()(VertexId qu, VertexId qw, VertexId du, VertexId dw) const {
    if (!check_labels_) return data_.HasEdge(du, dw);
    return data_.HasEdgeWithLabel(du, dw, query_.EdgeLabelBetween(qu, qw));
  }

  /// True when edge labels participate in matching; tree/anchor edges that
  /// a candidate-generation structure already implies must then still be
  /// label-verified.
  bool active() const { return check_labels_; }

 private:
  const Graph& query_;
  const Graph& data_;
  bool check_labels_;
};

}  // namespace daf::baselines

#endif  // DAF_BASELINES_COMMON_H_

#include "baselines/graphql.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "graph/query_extract.h"
#include "util/bitset.h"

namespace daf::baselines {

namespace {

// Kuhn's augmenting-path bipartite matching on a small local graph.
// left = query neighbors of u, right = data neighbors of v; adj in index
// space. Returns true iff every left vertex can be matched.
class LocalMatcher {
 public:
  bool SemiPerfect(const std::vector<std::vector<uint32_t>>& adj,
                   uint32_t num_right) {
    match_right_.assign(num_right, static_cast<uint32_t>(-1));
    for (uint32_t l = 0; l < adj.size(); ++l) {
      seen_.assign(num_right, false);
      if (!Augment(adj, l)) return false;
    }
    return true;
  }

 private:
  bool Augment(const std::vector<std::vector<uint32_t>>& adj, uint32_t l) {
    for (uint32_t r : adj[l]) {
      if (seen_[r]) continue;
      seen_[r] = true;
      if (match_right_[r] == static_cast<uint32_t>(-1) ||
          Augment(adj, match_right_[r])) {
        match_right_[r] = l;
        return true;
      }
    }
    return false;
  }

  std::vector<uint32_t> match_right_;
  std::vector<bool> seen_;
};

class GraphQl {
 public:
  GraphQl(const Graph& query, const Graph& data,
          const MatcherOptions& options, const Deadline& deadline)
      : query_(query),
        data_(data),
        options_(options),
        deadline_(deadline),
        data_labels_(MapQueryLabels(query, data)),
        mapping_(query.NumVertices(), kInvalidVertex),
        used_(data.NumVertices(), false),
        edge_ok_(query, data) {}

  // Returns false if some candidate set became empty (no embeddings).
  bool BuildCandidates(int refinement_rounds, uint64_t* aux_size) {
    const uint32_t n = query_.NumVertices();
    candidates_.assign(n, {});
    in_candidates_.assign(n, Bitset(data_.NumVertices()));
    for (uint32_t u = 0; u < n; ++u) {
      if (data_labels_[u] == kNoSuchLabel) return false;
      for (VertexId v : data_.VerticesWithLabel(data_labels_[u])) {
        if (data_.degree(v) >= query_.degree(u)) {
          candidates_[u].push_back(v);
          in_candidates_[u].Set(v);
        }
      }
      if (candidates_[u].empty()) return false;
    }
    // Pseudo-isomorphism refinement.
    LocalMatcher matcher;
    for (int round = 0; round < refinement_rounds; ++round) {
      bool changed = false;
      for (uint32_t u = 0; u < n; ++u) {
        auto& cand = candidates_[u];
        size_t kept = 0;
        for (VertexId v : cand) {
          if (PseudoCompatible(u, v, &matcher)) {
            cand[kept++] = v;
          } else {
            in_candidates_[u].Clear(v);
            changed = true;
          }
        }
        cand.resize(kept);
        if (cand.empty()) return false;
      }
      if (!changed) break;
    }
    *aux_size = 0;
    for (const auto& c : candidates_) *aux_size += c.size();
    return true;
  }

  void BuildOrder() {
    const uint32_t n = query_.NumVertices();
    order_.reserve(n);
    std::vector<bool> chosen(n, false);
    // Greedy: start with the smallest candidate set, then repeatedly pick
    // the connected unchosen vertex with the smallest candidate set.
    VertexId first = 0;
    for (uint32_t u = 1; u < n; ++u) {
      if (candidates_[u].size() < candidates_[first].size()) first = u;
    }
    order_.push_back(first);
    chosen[first] = true;
    while (order_.size() < n) {
      VertexId best = kInvalidVertex;
      for (uint32_t u = 0; u < n; ++u) {
        if (chosen[u]) continue;
        bool connected = false;
        for (VertexId w : query_.Neighbors(u)) {
          if (chosen[w]) {
            connected = true;
            break;
          }
        }
        if (!connected) continue;
        if (best == kInvalidVertex ||
            candidates_[u].size() < candidates_[best].size()) {
          best = u;
        }
      }
      if (best == kInvalidVertex) {
        for (uint32_t u = 0; u < n; ++u) {
          if (!chosen[u]) {
            best = u;
            break;
          }
        }
      }
      order_.push_back(best);
      chosen[best] = true;
    }
    position_.assign(n, 0);
    for (uint32_t i = 0; i < n; ++i) position_[order_[i]] = i;
  }

  void Run(MatcherResult* result) {
    result_ = result;
    Recurse(0);
  }

 private:
  // Semi-perfect matching between N(u) and N(v): every query neighbor u'
  // needs a distinct data neighbor v' with label(v') matching and
  // v' ∈ C(u').
  bool PseudoCompatible(VertexId u, VertexId v, LocalMatcher* matcher) {
    auto query_neighbors = query_.Neighbors(u);
    auto data_neighbors = data_.Neighbors(v);
    std::vector<std::vector<uint32_t>> adj(query_neighbors.size());
    for (size_t i = 0; i < query_neighbors.size(); ++i) {
      VertexId uq = query_neighbors[i];
      for (size_t j = 0; j < data_neighbors.size(); ++j) {
        if (in_candidates_[uq].Test(data_neighbors[j])) {
          adj[i].push_back(static_cast<uint32_t>(j));
        }
      }
      if (adj[i].empty()) return false;
    }
    return matcher->SemiPerfect(adj,
                                static_cast<uint32_t>(data_neighbors.size()));
  }

  void Recurse(uint32_t depth) {
    ++result_->recursive_calls;
    if ((result_->recursive_calls & 1023) == 0 && deadline_.Expired()) {
      result_->timed_out = true;
      stop_ = true;
      return;
    }
    if (depth == query_.NumVertices()) {
      ++result_->embeddings;
      if (options_.callback && !options_.callback(mapping_)) stop_ = true;
      if (options_.limit != 0 && result_->embeddings >= options_.limit) {
        result_->limit_reached = true;
        stop_ = true;
      }
      return;
    }
    VertexId u = order_[depth];
    for (VertexId v : candidates_[u]) {
      if (used_[v]) continue;
      bool edges_ok = true;
      for (VertexId w : query_.Neighbors(u)) {
        if (position_[w] < depth && !edge_ok_(u, w, mapping_[w], v)) {
          edges_ok = false;
          break;
        }
      }
      if (!edges_ok) continue;
      mapping_[u] = v;
      used_[v] = true;
      Recurse(depth + 1);
      used_[v] = false;
      mapping_[u] = kInvalidVertex;
      if (stop_) return;
    }
  }

  const Graph& query_;
  const Graph& data_;
  const MatcherOptions& options_;
  const Deadline& deadline_;
  std::vector<Label> data_labels_;
  std::vector<std::vector<VertexId>> candidates_;
  std::vector<Bitset> in_candidates_;
  std::vector<VertexId> order_;
  std::vector<uint32_t> position_;
  std::vector<VertexId> mapping_;
  std::vector<bool> used_;
  EdgeVerifier edge_ok_;
  MatcherResult* result_ = nullptr;
  bool stop_ = false;
};

}  // namespace

MatcherResult GraphQlMatch(const Graph& query, const Graph& data,
                           const MatcherOptions& options) {
  MatcherResult result;
  Deadline deadline(options.time_limit_ms);
  Stopwatch preprocess_timer;
  GraphQl graphql(query, data, options, deadline);
  bool feasible = graphql.BuildCandidates(/*refinement_rounds=*/2,
                                          &result.aux_size);
  if (feasible) graphql.BuildOrder();
  result.preprocess_ms = preprocess_timer.ElapsedMs();
  if (!feasible) return result;
  Stopwatch search_timer;
  graphql.Run(&result);
  result.search_ms = search_timer.ElapsedMs();
  return result;
}

}  // namespace daf::baselines

#include "baselines/bruteforce.h"

#include <vector>

#include "graph/query_extract.h"

namespace daf::baselines {

namespace {

class BruteForcer {
 public:
  BruteForcer(const Graph& query, const Graph& data,
              const MatcherOptions& options, const Deadline& deadline)
      : query_(query),
        data_(data),
        options_(options),
        deadline_(deadline),
        data_labels_(MapQueryLabels(query, data)),
        mapping_(query.NumVertices(), kInvalidVertex),
        used_(data.NumVertices(), false),
        edge_ok_(query, data) {}

  void Run(MatcherResult* result) {
    result_ = result;
    Recurse(0);
  }

 private:
  void Recurse(uint32_t u) {
    ++result_->recursive_calls;
    if ((result_->recursive_calls & 1023) == 0 && deadline_.Expired()) {
      result_->timed_out = true;
      stop_ = true;
      return;
    }
    if (u == query_.NumVertices()) {
      ++result_->embeddings;
      if (options_.callback && !options_.callback(mapping_)) stop_ = true;
      if (options_.limit != 0 && result_->embeddings >= options_.limit) {
        result_->limit_reached = true;
        stop_ = true;
      }
      return;
    }
    if (data_labels_[u] == kNoSuchLabel) return;
    for (VertexId v : data_.VerticesWithLabel(data_labels_[u])) {
      if (options_.injective && used_[v]) continue;
      // The degree filter is injectivity-based (neighbors may collapse onto
      // one data vertex in a homomorphism).
      if (options_.injective && data_.degree(v) < query_.degree(u)) continue;
      bool edges_ok = true;
      for (VertexId w : query_.Neighbors(u)) {
        if (w < u && !edge_ok_(u, w, mapping_[w], v)) {
          edges_ok = false;
          break;
        }
      }
      if (!edges_ok) continue;
      mapping_[u] = v;
      used_[v] = true;
      Recurse(u + 1);
      used_[v] = false;
      mapping_[u] = kInvalidVertex;
      if (stop_) return;
    }
  }

  const Graph& query_;
  const Graph& data_;
  const MatcherOptions& options_;
  const Deadline& deadline_;
  std::vector<Label> data_labels_;
  std::vector<VertexId> mapping_;
  std::vector<bool> used_;
  EdgeVerifier edge_ok_;
  MatcherResult* result_ = nullptr;
  bool stop_ = false;
};

}  // namespace

MatcherResult BruteForceMatch(const Graph& query, const Graph& data,
                              const MatcherOptions& options) {
  MatcherResult result;
  Deadline deadline(options.time_limit_ms);
  Stopwatch timer;
  BruteForcer brute(query, data, options, deadline);
  brute.Run(&result);
  result.search_ms = timer.ElapsedMs();
  return result;
}

}  // namespace daf::baselines

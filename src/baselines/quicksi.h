#ifndef DAF_BASELINES_QUICKSI_H_
#define DAF_BASELINES_QUICKSI_H_

#include "baselines/common.h"

namespace daf::baselines {

/// QuickSI [Shang et al., VLDB 2008]: the query is linearized into a
/// QI-sequence — a spanning tree ordered by Prim's algorithm on edge weights
/// that estimate how infrequent an edge's label pattern is in the data graph
/// (rare patterns first) — and matched by prefix-extension backtracking with
/// the remaining (back) edges verified as soon as both endpoints are mapped.
MatcherResult QuickSiMatch(const Graph& query, const Graph& data,
                           const MatcherOptions& options = {});

}  // namespace daf::baselines

#endif  // DAF_BASELINES_QUICKSI_H_

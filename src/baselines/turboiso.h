#ifndef DAF_BASELINES_TURBOISO_H_
#define DAF_BASELINES_TURBOISO_H_

#include "baselines/common.h"

namespace daf::baselines {

/// Turbo_iso [Han et al., SIGMOD 2013]: the query is matched region by
/// region. A BFS spanning tree is rooted at argmin |C_ini(u)|/deg(u); for
/// every candidate of the root, the candidate region (CR structure) is
/// explored top-down along the tree and pruned bottom-up; a per-region
/// matching order is derived by the path ordering (root-to-leaf tree paths,
/// cheapest estimated cardinality first); backtracking then runs inside the
/// region, probing the data graph for non-tree edges. The NEC query
/// compression of the original is omitted (an orthogonal optimization; see
/// DESIGN.md §2.2).
MatcherResult TurboIsoMatch(const Graph& query, const Graph& data,
                            const MatcherOptions& options = {});

}  // namespace daf::baselines

#endif  // DAF_BASELINES_TURBOISO_H_

#ifndef DAF_BASELINES_GADDI_H_
#define DAF_BASELINES_GADDI_H_

#include "baselines/common.h"

namespace daf::baselines {

/// GADDI [Zhang et al., EDBT 2009]: distance-based filtering in the spirit
/// of the neighborhood discriminating substructure (NDS) index — candidates
/// must dominate the query vertex's per-label counts of vertices within
/// distance <= 2 and its local (distance-1) triangle count — followed by
/// neighborhood-expanding backtracking. The full NDS index amortizes over
/// repeated queries against one data graph; its per-query filtering effect
/// is what this implementation reproduces.
MatcherResult GaddiMatch(const Graph& query, const Graph& data,
                         const MatcherOptions& options = {});

}  // namespace daf::baselines

#endif  // DAF_BASELINES_GADDI_H_

#ifndef DAF_BASELINES_VF2_H_
#define DAF_BASELINES_VF2_H_

#include "baselines/common.h"

namespace daf::baselines {

/// VF2 [Cordella et al., TPAMI 2004]: state-space backtracking over a
/// connectivity-preserving query order with the classic feasibility rules —
/// label equality, consistency of edges to already-mapped vertices, and the
/// one-step look-ahead comparing the numbers of unmapped neighbors.
MatcherResult Vf2Match(const Graph& query, const Graph& data,
                       const MatcherOptions& options = {});

}  // namespace daf::baselines

#endif  // DAF_BASELINES_VF2_H_

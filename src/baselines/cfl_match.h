#ifndef DAF_BASELINES_CFL_MATCH_H_
#define DAF_BASELINES_CFL_MATCH_H_

#include "baselines/common.h"

namespace daf::baselines {

/// CFL-Match [Bi et al., SIGMOD 2016] — the paper's main comparator.
///
/// Pipeline: a BFS spanning tree is rooted at argmin |C_ini(u)|/deg(u); the
/// CPI auxiliary structure (candidate sets + *tree-edge-only* adjacency) is
/// constructed with a top-down pass that also exploits backward non-tree
/// edges for filtering, then refined bottom-up and top-down (three passes,
/// with NLF/MND local filters, mirroring the original); the query is
/// decomposed into core (the 2-core), forest, and leaves; matching proceeds
/// core-first, then forest, then leaves, each part ordered by the path
/// ordering (ascending estimated path cardinality in the CPI).
///
/// Two structural properties distinguish it from DAF and drive the paper's
/// Figure 9/10 comparisons: the CPI stores no non-tree edges (so non-tree
/// edges are verified by probing the data graph during backtracking), and
/// the matching order is fixed per query (path ordering) rather than
/// adaptive.
MatcherResult CflMatch(const Graph& query, const Graph& data,
                       const MatcherOptions& options = {});

}  // namespace daf::baselines

#endif  // DAF_BASELINES_CFL_MATCH_H_

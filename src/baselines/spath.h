#ifndef DAF_BASELINES_SPATH_H_
#define DAF_BASELINES_SPATH_H_

#include "baselines/common.h"

namespace daf::baselines {

/// SPath [Zhao & Han, VLDB 2010]: candidates are filtered by neighborhood
/// signatures (per-label vertex counts within distance <= 2 must dominate
/// the query vertex's signature), and the query is matched path-at-a-time —
/// the spanning tree is decomposed into root-to-leaf paths whose vertices
/// are matched as blocks, most selective path first. The original's
/// distance-indexed path repository is represented by the signature filter;
/// the matching logic (block-wise path extension with on-the-fly
/// verification of remaining edges) follows the paper.
MatcherResult SPathMatch(const Graph& query, const Graph& data,
                         const MatcherOptions& options = {});

}  // namespace daf::baselines

#endif  // DAF_BASELINES_SPATH_H_

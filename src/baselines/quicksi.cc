#include "baselines/quicksi.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "graph/query_extract.h"

namespace daf::baselines {

namespace {

class QuickSi {
 public:
  QuickSi(const Graph& query, const Graph& data,
          const MatcherOptions& options, const Deadline& deadline)
      : query_(query),
        data_(data),
        options_(options),
        deadline_(deadline),
        data_labels_(MapQueryLabels(query, data)),
        mapping_(query.NumVertices(), kInvalidVertex),
        used_(data.NumVertices(), false),
        edge_ok_(query, data) {
    BuildSequence();
  }

  void Run(MatcherResult* result) {
    result_ = result;
    Recurse(0);
  }

 private:
  // Weight of a query edge: product of the endpoint label frequencies in G,
  // a cheap estimate of how many data edges could realize the pattern.
  double EdgeWeight(VertexId a, VertexId b) const {
    auto freq = [&](VertexId u) -> double {
      Label l = data_labels_[u];
      return l == kNoSuchLabel ? 0.0
                               : static_cast<double>(data_.LabelFrequency(l));
    };
    return freq(a) * freq(b);
  }

  // Prim's MST growth; the visit order is the QI-sequence.
  void BuildSequence() {
    const uint32_t n = query_.NumVertices();
    std::vector<bool> in_tree(n, false);
    order_.reserve(n);
    anchor_.assign(n, kInvalidVertex);
    VertexId start = 0;
    double best_freq = std::numeric_limits<double>::infinity();
    for (uint32_t u = 0; u < n; ++u) {
      Label l = data_labels_[u];
      double f = l == kNoSuchLabel ? 0 : data_.LabelFrequency(l);
      // Prefer rare labels, break ties toward high degree.
      double score = f / (query_.degree(u) + 1.0);
      if (score < best_freq) {
        best_freq = score;
        start = u;
      }
    }
    in_tree[start] = true;
    order_.push_back(start);
    while (order_.size() < n) {
      VertexId best_v = kInvalidVertex;
      VertexId best_anchor = kInvalidVertex;
      double best_weight = std::numeric_limits<double>::infinity();
      for (VertexId t : order_) {
        for (VertexId w : query_.Neighbors(t)) {
          if (in_tree[w]) continue;
          double weight = EdgeWeight(t, w);
          if (weight < best_weight) {
            best_weight = weight;
            best_v = w;
            best_anchor = t;
          }
        }
      }
      if (best_v == kInvalidVertex) {
        // Disconnected query: open a new tree at an arbitrary vertex.
        for (uint32_t u = 0; u < n; ++u) {
          if (!in_tree[u]) {
            best_v = u;
            break;
          }
        }
      }
      in_tree[best_v] = true;
      anchor_[best_v] = best_anchor;
      order_.push_back(best_v);
    }
    position_.assign(n, 0);
    for (uint32_t i = 0; i < n; ++i) position_[order_[i]] = i;
  }

  void Recurse(uint32_t depth) {
    ++result_->recursive_calls;
    if ((result_->recursive_calls & 1023) == 0 && deadline_.Expired()) {
      result_->timed_out = true;
      stop_ = true;
      return;
    }
    if (depth == query_.NumVertices()) {
      ++result_->embeddings;
      if (options_.callback && !options_.callback(mapping_)) stop_ = true;
      if (options_.limit != 0 && result_->embeddings >= options_.limit) {
        result_->limit_reached = true;
        stop_ = true;
      }
      return;
    }
    VertexId u = order_[depth];
    if (data_labels_[u] == kNoSuchLabel) return;
    auto try_vertex = [&](VertexId v) {
      if (used_[v] || data_.degree(v) < query_.degree(u)) return;
      // Check every query edge whose other endpoint is already mapped
      // (tree edge to the anchor plus all back edges).
      for (VertexId w : query_.Neighbors(u)) {
        if (position_[w] < depth && !edge_ok_(u, w, mapping_[w], v)) {
          return;
        }
      }
      mapping_[u] = v;
      used_[v] = true;
      Recurse(depth + 1);
      used_[v] = false;
      mapping_[u] = kInvalidVertex;
    };
    if (anchor_[u] != kInvalidVertex) {
      for (VertexId v :
           data_.NeighborsWithLabel(mapping_[anchor_[u]], data_labels_[u])) {
        try_vertex(v);
        if (stop_) return;
      }
    } else {
      for (VertexId v : data_.VerticesWithLabel(data_labels_[u])) {
        try_vertex(v);
        if (stop_) return;
      }
    }
  }

  const Graph& query_;
  const Graph& data_;
  const MatcherOptions& options_;
  const Deadline& deadline_;
  std::vector<Label> data_labels_;
  std::vector<VertexId> order_;
  std::vector<VertexId> anchor_;
  std::vector<uint32_t> position_;
  std::vector<VertexId> mapping_;
  std::vector<bool> used_;
  EdgeVerifier edge_ok_;
  MatcherResult* result_ = nullptr;
  bool stop_ = false;
};

}  // namespace

MatcherResult QuickSiMatch(const Graph& query, const Graph& data,
                           const MatcherOptions& options) {
  MatcherResult result;
  Deadline deadline(options.time_limit_ms);
  Stopwatch preprocess_timer;
  QuickSi quicksi(query, data, options, deadline);
  result.preprocess_ms = preprocess_timer.ElapsedMs();
  Stopwatch search_timer;
  quicksi.Run(&result);
  result.search_ms = search_timer.ElapsedMs();
  return result;
}

}  // namespace daf::baselines

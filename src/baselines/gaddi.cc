#include "baselines/gaddi.h"

#include <algorithm>
#include <map>
#include <queue>
#include <vector>

#include "graph/query_extract.h"

namespace daf::baselines {

namespace {

// Number of triangles incident to v (discriminating local substructure).
uint64_t TriangleCount(const Graph& g, VertexId v) {
  uint64_t count = 0;
  auto neighbors = g.Neighbors(v);
  for (size_t i = 0; i < neighbors.size(); ++i) {
    for (size_t j = i + 1; j < neighbors.size(); ++j) {
      if (g.HasEdge(neighbors[i], neighbors[j])) ++count;
    }
  }
  return count;
}

// Per-label counts of distinct vertices within distance <= 2 of v.
std::map<Label, uint32_t> Ball2Counts(const Graph& g, VertexId v,
                                      const std::vector<Label>* label_map) {
  auto mapped = [&](VertexId w) {
    return label_map == nullptr ? g.label(w) : (*label_map)[w];
  };
  std::vector<VertexId> ball(g.Neighbors(v).begin(), g.Neighbors(v).end());
  for (VertexId w : g.Neighbors(v)) {
    for (VertexId x : g.Neighbors(w)) {
      if (x != v) ball.push_back(x);
    }
  }
  std::sort(ball.begin(), ball.end());
  ball.erase(std::unique(ball.begin(), ball.end()), ball.end());
  std::map<Label, uint32_t> counts;
  for (VertexId x : ball) ++counts[mapped(x)];
  return counts;
}

class Gaddi {
 public:
  Gaddi(const Graph& query, const Graph& data, const MatcherOptions& options,
        const Deadline& deadline)
      : query_(query),
        data_(data),
        options_(options),
        deadline_(deadline),
        data_labels_(MapQueryLabels(query, data)),
        mapping_(query.NumVertices(), kInvalidVertex),
        used_(data.NumVertices(), false),
        edge_ok_(query, data) {}

  bool BuildCandidates(uint64_t* aux_size) {
    const uint32_t n = query_.NumVertices();
    candidates_.assign(n, {});
    for (uint32_t u = 0; u < n; ++u) {
      if (data_labels_[u] == kNoSuchLabel) return false;
      std::map<Label, uint32_t> query_ball =
          Ball2Counts(query_, u, &data_labels_);
      uint64_t query_triangles = TriangleCount(query_, u);
      for (VertexId v : data_.VerticesWithLabel(data_labels_[u])) {
        if (data_.degree(v) < query_.degree(u)) continue;
        if (TriangleCount(data_, v) < query_triangles) continue;
        std::map<Label, uint32_t> data_ball = Ball2Counts(data_, v, nullptr);
        bool ok = true;
        for (const auto& [label, count] : query_ball) {
          auto it = data_ball.find(label);
          if (it == data_ball.end() || it->second < count) {
            ok = false;
            break;
          }
        }
        if (ok) candidates_[u].push_back(v);
      }
      if (candidates_[u].empty()) return false;
    }
    *aux_size = 0;
    for (const auto& c : candidates_) *aux_size += c.size();
    return true;
  }

  // BFS order from the vertex with the fewest candidates.
  void BuildOrder() {
    const uint32_t n = query_.NumVertices();
    VertexId start = 0;
    for (uint32_t u = 1; u < n; ++u) {
      if (candidates_[u].size() < candidates_[start].size()) start = u;
    }
    std::vector<bool> seen(n, false);
    std::queue<VertexId> queue;
    seen[start] = true;
    queue.push(start);
    for (uint32_t next = 0; order_.size() < n;) {
      if (queue.empty()) {
        while (seen[next]) ++next;
        seen[next] = true;
        queue.push(next);
      }
      VertexId u = queue.front();
      queue.pop();
      order_.push_back(u);
      for (VertexId w : query_.Neighbors(u)) {
        if (!seen[w]) {
          seen[w] = true;
          queue.push(w);
        }
      }
    }
    position_.assign(n, 0);
    for (uint32_t i = 0; i < n; ++i) position_[order_[i]] = i;
  }

  void Run(MatcherResult* result) {
    result_ = result;
    Recurse(0);
  }

 private:
  void Recurse(uint32_t depth) {
    ++result_->recursive_calls;
    if ((result_->recursive_calls & 1023) == 0 && deadline_.Expired()) {
      result_->timed_out = true;
      stop_ = true;
      return;
    }
    if (depth == query_.NumVertices()) {
      ++result_->embeddings;
      if (options_.callback && !options_.callback(mapping_)) stop_ = true;
      if (options_.limit != 0 && result_->embeddings >= options_.limit) {
        result_->limit_reached = true;
        stop_ = true;
      }
      return;
    }
    VertexId u = order_[depth];
    VertexId anchor = kInvalidVertex;
    for (VertexId w : query_.Neighbors(u)) {
      if (position_[w] < depth) {
        anchor = w;
        break;
      }
    }
    auto try_vertex = [&](VertexId v) {
      if (used_[v]) return;
      for (VertexId w : query_.Neighbors(u)) {
        if (position_[w] < depth && !edge_ok_(u, w, mapping_[w], v)) {
          return;
        }
      }
      mapping_[u] = v;
      used_[v] = true;
      Recurse(depth + 1);
      used_[v] = false;
      mapping_[u] = kInvalidVertex;
    };
    if (anchor != kInvalidVertex) {
      for (VertexId v :
           data_.NeighborsWithLabel(mapping_[anchor], data_labels_[u])) {
        if (std::binary_search(candidates_[u].begin(), candidates_[u].end(),
                               v)) {
          try_vertex(v);
          if (stop_) return;
        }
      }
    } else {
      for (VertexId v : candidates_[u]) {
        try_vertex(v);
        if (stop_) return;
      }
    }
  }

  const Graph& query_;
  const Graph& data_;
  const MatcherOptions& options_;
  const Deadline& deadline_;
  std::vector<Label> data_labels_;
  std::vector<std::vector<VertexId>> candidates_;
  std::vector<VertexId> order_;
  std::vector<uint32_t> position_;
  std::vector<VertexId> mapping_;
  std::vector<bool> used_;
  EdgeVerifier edge_ok_;
  MatcherResult* result_ = nullptr;
  bool stop_ = false;
};

}  // namespace

MatcherResult GaddiMatch(const Graph& query, const Graph& data,
                         const MatcherOptions& options) {
  MatcherResult result;
  Deadline deadline(options.time_limit_ms);
  Stopwatch preprocess_timer;
  Gaddi gaddi(query, data, options, deadline);
  bool feasible = gaddi.BuildCandidates(&result.aux_size);
  if (feasible) gaddi.BuildOrder();
  result.preprocess_ms = preprocess_timer.ElapsedMs();
  if (!feasible) return result;
  Stopwatch search_timer;
  gaddi.Run(&result);
  result.search_ms = search_timer.ElapsedMs();
  return result;
}

}  // namespace daf::baselines

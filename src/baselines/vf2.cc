#include "baselines/vf2.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "graph/query_extract.h"

namespace daf::baselines {

namespace {

class Vf2 {
 public:
  Vf2(const Graph& query, const Graph& data, const MatcherOptions& options,
      const Deadline& deadline)
      : query_(query),
        data_(data),
        options_(options),
        deadline_(deadline),
        data_labels_(MapQueryLabels(query, data)),
        mapping_(query.NumVertices(), kInvalidVertex),
        used_(data.NumVertices(), false),
        edge_ok_(query, data) {
    BuildOrder();
  }

  void Run(MatcherResult* result) {
    result_ = result;
    Recurse(0);
  }

 private:
  // Connectivity-preserving order: BFS from the max-degree vertex; each
  // vertex after the first has a mapped neighbor ("anchor") when reached.
  void BuildOrder() {
    const uint32_t n = query_.NumVertices();
    order_.reserve(n);
    anchor_.assign(n, kInvalidVertex);
    std::vector<bool> enqueued(n, false);
    VertexId start = 0;
    for (uint32_t u = 1; u < n; ++u) {
      if (query_.degree(u) > query_.degree(start)) start = u;
    }
    std::queue<VertexId> queue;
    queue.push(start);
    enqueued[start] = true;
    // The outer loop covers disconnected queries (each component restarts
    // with an anchorless vertex that scans its whole label class).
    for (uint32_t next_start = 0; order_.size() < n;) {
      if (queue.empty()) {
        while (enqueued[next_start]) ++next_start;
        enqueued[next_start] = true;
        queue.push(next_start);
      }
      VertexId u = queue.front();
      queue.pop();
      order_.push_back(u);
      for (VertexId w : query_.Neighbors(u)) {
        if (!enqueued[w]) {
          enqueued[w] = true;
          anchor_[w] = u;
          queue.push(w);
        }
      }
    }
  }

  uint32_t UnmappedNeighbors(const Graph& g, VertexId v,
                             const std::vector<bool>& mapped_flag) const {
    uint32_t count = 0;
    for (VertexId w : g.Neighbors(v)) {
      if (!mapped_flag[w]) ++count;
    }
    return count;
  }

  bool Feasible(VertexId u, VertexId v) {
    if (data_.degree(v) < query_.degree(u)) return false;
    // Edge consistency with all mapped query neighbors.
    uint32_t mapped_query_neighbors = 0;
    for (VertexId w : query_.Neighbors(u)) {
      if (mapping_[w] != kInvalidVertex) {
        ++mapped_query_neighbors;
        if (!edge_ok_(u, w, mapping_[w], v)) return false;
      }
    }
    // Look-ahead: v must have at least as many unmapped neighbors as u.
    uint32_t unmapped_data_neighbors = 0;
    for (VertexId w : data_.Neighbors(v)) {
      if (!used_[w]) ++unmapped_data_neighbors;
    }
    uint32_t unmapped_query_neighbors =
        query_.degree(u) - mapped_query_neighbors;
    return unmapped_data_neighbors >= unmapped_query_neighbors;
  }

  void Recurse(uint32_t depth) {
    ++result_->recursive_calls;
    if ((result_->recursive_calls & 1023) == 0 && deadline_.Expired()) {
      result_->timed_out = true;
      stop_ = true;
      return;
    }
    if (depth == query_.NumVertices()) {
      ++result_->embeddings;
      if (options_.callback && !options_.callback(mapping_)) stop_ = true;
      if (options_.limit != 0 && result_->embeddings >= options_.limit) {
        result_->limit_reached = true;
        stop_ = true;
      }
      return;
    }
    VertexId u = order_[depth];
    if (data_labels_[u] == kNoSuchLabel) return;
    auto try_vertex = [&](VertexId v) {
      if (used_[v] || data_.label(v) != data_labels_[u] || !Feasible(u, v)) {
        return;
      }
      mapping_[u] = v;
      used_[v] = true;
      Recurse(depth + 1);
      used_[v] = false;
      mapping_[u] = kInvalidVertex;
    };
    if (anchor_[u] != kInvalidVertex) {
      for (VertexId v :
           data_.NeighborsWithLabel(mapping_[anchor_[u]], data_labels_[u])) {
        try_vertex(v);
        if (stop_) return;
      }
    } else {
      for (VertexId v : data_.VerticesWithLabel(data_labels_[u])) {
        try_vertex(v);
        if (stop_) return;
      }
    }
  }

  const Graph& query_;
  const Graph& data_;
  const MatcherOptions& options_;
  const Deadline& deadline_;
  std::vector<Label> data_labels_;
  std::vector<VertexId> order_;
  std::vector<VertexId> anchor_;
  std::vector<VertexId> mapping_;
  std::vector<bool> used_;
  EdgeVerifier edge_ok_;
  MatcherResult* result_ = nullptr;
  bool stop_ = false;
};

}  // namespace

MatcherResult Vf2Match(const Graph& query, const Graph& data,
                       const MatcherOptions& options) {
  MatcherResult result;
  Deadline deadline(options.time_limit_ms);
  Stopwatch timer;
  Vf2 vf2(query, data, options, deadline);
  result.preprocess_ms = timer.ElapsedMs();
  Stopwatch search_timer;
  vf2.Run(&result);
  result.search_ms = search_timer.ElapsedMs();
  return result;
}

}  // namespace daf::baselines

#include "baselines/turboiso.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "graph/properties.h"
#include "graph/query_extract.h"

namespace daf::baselines {

namespace {

class TurboIso {
 public:
  TurboIso(const Graph& query, const Graph& data,
           const MatcherOptions& options, const Deadline& deadline)
      : query_(query),
        data_(data),
        options_(options),
        deadline_(deadline),
        data_labels_(MapQueryLabels(query, data)),
        n_(query.NumVertices()),
        mapping_(n_, kInvalidVertex),
        used_(data.NumVertices(), false),
        edge_ok_(query, data) {}

  bool Prepare() {
    for (uint32_t u = 0; u < n_; ++u) {
      if (data_labels_[u] == kNoSuchLabel) return false;
    }
    ChooseRootAndTree();
    return true;
  }

  void Run(MatcherResult* result) {
    result_ = result;
    // Region-by-region: one candidate region per start vertex.
    for (VertexId vs : data_.VerticesWithLabel(data_labels_[root_])) {
      if (data_.degree(vs) < query_.degree(root_)) continue;
      if (stop_) return;
      if (ExploreRegion(vs)) {
        BuildRegionOrder();
        mapping_[root_] = vs;
        used_[vs] = true;
        Recurse(1);
        used_[vs] = false;
        mapping_[root_] = kInvalidVertex;
      }
    }
  }

 private:
  void ChooseRootAndTree() {
    // Root by the rank |C_ini(u)| / deg(u).
    double best = std::numeric_limits<double>::infinity();
    root_ = 0;
    for (uint32_t u = 0; u < n_; ++u) {
      uint32_t count = 0;
      for (VertexId v : data_.VerticesWithLabel(data_labels_[u])) {
        if (data_.degree(v) >= query_.degree(u)) ++count;
      }
      double score = static_cast<double>(count) /
                     std::max<uint32_t>(1, query_.degree(u));
      if (score < best) {
        best = score;
        root_ = u;
      }
    }
    // BFS spanning tree.
    tree_parent_.assign(n_, kInvalidVertex);
    tree_children_.assign(n_, {});
    std::vector<bool> seen(n_, false);
    std::queue<VertexId> queue;
    seen[root_] = true;
    queue.push(root_);
    bfs_order_.clear();
    while (!queue.empty()) {
      VertexId u = queue.front();
      queue.pop();
      bfs_order_.push_back(u);
      for (VertexId w : query_.Neighbors(u)) {
        if (!seen[w]) {
          seen[w] = true;
          tree_parent_[w] = u;
          tree_children_[u].push_back(w);
          queue.push(w);
        }
      }
    }
    leaves_.clear();
    for (uint32_t u = 0; u < n_; ++u) {
      if (tree_children_[u].empty()) leaves_.push_back(u);
    }
  }

  // Explores the candidate region rooted at vs: CR(u) computed top-down
  // along the tree, then pruned bottom-up. Returns false if the region
  // cannot contain an embedding.
  bool ExploreRegion(VertexId vs) {
    region_.assign(n_, {});
    region_[root_] = {vs};
    for (VertexId u : bfs_order_) {
      if (u == root_) continue;
      VertexId p = tree_parent_[u];
      std::vector<VertexId>& cr = region_[u];
      cr.clear();
      for (VertexId vp : region_[p]) {
        for (VertexId v : data_.NeighborsWithLabel(vp, data_labels_[u])) {
          if (data_.degree(v) >= query_.degree(u)) cr.push_back(v);
        }
      }
      std::sort(cr.begin(), cr.end());
      cr.erase(std::unique(cr.begin(), cr.end()), cr.end());
      if (cr.empty()) return false;
    }
    // Bottom-up pruning: keep v only if every tree child has an adjacent
    // region candidate.
    for (size_t i = bfs_order_.size(); i-- > 0;) {
      VertexId u = bfs_order_[i];
      if (tree_children_[u].empty()) continue;
      std::vector<VertexId>& cr = region_[u];
      size_t kept = 0;
      for (VertexId v : cr) {
        bool ok = true;
        for (VertexId c : tree_children_[u]) {
          bool found = false;
          for (VertexId w : data_.NeighborsWithLabel(v, data_labels_[c])) {
            if (std::binary_search(region_[c].begin(), region_[c].end(),
                                   w)) {
              found = true;
              break;
            }
          }
          if (!found) {
            ok = false;
            break;
          }
        }
        if (ok) cr[kept++] = v;
      }
      cr.resize(kept);
      if (cr.empty()) return false;
    }
    for (const auto& cr : region_) result_->aux_size += cr.size();
    return true;
  }

  // Path ordering inside the region: root-to-leaf tree paths, cheapest
  // estimated cardinality (sum of log region sizes) first.
  void BuildRegionOrder() {
    std::vector<std::pair<double, VertexId>> ranked;
    ranked.reserve(leaves_.size());
    for (VertexId leaf : leaves_) {
      double estimate = 0;
      for (VertexId u = leaf; u != kInvalidVertex; u = tree_parent_[u]) {
        estimate += std::log(static_cast<double>(region_[u].size()) + 1.0);
      }
      ranked.emplace_back(estimate, leaf);
    }
    std::sort(ranked.begin(), ranked.end());
    order_.clear();
    std::vector<bool> ordered(n_, false);
    order_.push_back(root_);
    ordered[root_] = true;
    std::vector<VertexId> path;
    for (const auto& [estimate, leaf] : ranked) {
      path.clear();
      for (VertexId u = leaf; u != kInvalidVertex; u = tree_parent_[u]) {
        path.push_back(u);
      }
      std::reverse(path.begin(), path.end());
      for (VertexId u : path) {
        if (!ordered[u]) {
          ordered[u] = true;
          order_.push_back(u);
        }
      }
    }
    position_.assign(n_, 0);
    for (uint32_t i = 0; i < n_; ++i) position_[order_[i]] = i;
  }

  void Recurse(uint32_t depth) {
    ++result_->recursive_calls;
    if ((result_->recursive_calls & 1023) == 0 && deadline_.Expired()) {
      result_->timed_out = true;
      stop_ = true;
      return;
    }
    if (depth == n_) {
      ++result_->embeddings;
      if (options_.callback && !options_.callback(mapping_)) stop_ = true;
      if (options_.limit != 0 && result_->embeddings >= options_.limit) {
        result_->limit_reached = true;
        stop_ = true;
      }
      return;
    }
    VertexId u = order_[depth];
    VertexId p = tree_parent_[u];  // mapped (tree-consistent order)
    for (VertexId v : data_.NeighborsWithLabel(mapping_[p], data_labels_[u])) {
      if (used_[v] ||
          !std::binary_search(region_[u].begin(), region_[u].end(), v)) {
        continue;
      }
      bool edges_ok = true;
      for (VertexId w : query_.Neighbors(u)) {
        if ((w != p || edge_ok_.active()) && position_[w] < depth &&
            !edge_ok_(u, w, mapping_[w], v)) {
          edges_ok = false;  // non-tree edge probe into G
          break;
        }
      }
      if (!edges_ok) continue;
      mapping_[u] = v;
      used_[v] = true;
      Recurse(depth + 1);
      used_[v] = false;
      mapping_[u] = kInvalidVertex;
      if (stop_) return;
    }
  }

  const Graph& query_;
  const Graph& data_;
  const MatcherOptions& options_;
  const Deadline& deadline_;
  std::vector<Label> data_labels_;
  const uint32_t n_;
  VertexId root_ = 0;
  std::vector<VertexId> tree_parent_;
  std::vector<std::vector<VertexId>> tree_children_;
  std::vector<VertexId> bfs_order_;
  std::vector<VertexId> leaves_;
  std::vector<std::vector<VertexId>> region_;
  std::vector<VertexId> order_;
  std::vector<uint32_t> position_;
  std::vector<VertexId> mapping_;
  std::vector<bool> used_;
  EdgeVerifier edge_ok_;
  MatcherResult* result_ = nullptr;
  bool stop_ = false;
};

}  // namespace

MatcherResult TurboIsoMatch(const Graph& query, const Graph& data,
                            const MatcherOptions& options) {
  MatcherResult result;
  // Turbo_iso's region exploration requires a connected, non-empty query
  // (the paper's setting).
  if (query.NumVertices() == 0 || !IsConnected(query)) {
    result.ok = false;
    return result;
  }
  Deadline deadline(options.time_limit_ms);
  Stopwatch preprocess_timer;
  TurboIso turbo(query, data, options, deadline);
  bool feasible = turbo.Prepare();
  result.preprocess_ms = preprocess_timer.ElapsedMs();
  if (!feasible) return result;
  Stopwatch search_timer;
  turbo.Run(&result);
  result.search_ms = search_timer.ElapsedMs();
  return result;
}

}  // namespace daf::baselines
